//! The length-prefixed binary wire protocol (see `PROTOCOL.md`).
//!
//! A frame is `[len: u32 BE][payload: len bytes]`. Request payloads are
//! `[op: u8][id: u64 BE][body]`; response payloads are
//! `[status: u8][id: u64 BE][body]`. Queries travel as the rule syntax of
//! [`xdx_patterns::parser::parse_query`] inside length-prefixed UTF-8
//! strings (`[len: u32 BE][bytes]`). Documents travel in the connection's
//! negotiated [`Codec`]: the lossless tree text of [`xdx_xmltree::text`]
//! by default (protocol v1, still the v2 default), or the binary preorder
//! frames of [`xdx_xmltree::binary`] after a [`RequestBody::Hello`]
//! negotiation (protocol v2) — both as length-prefixed blobs, so framing
//! is codec-independent.
//!
//! v2 also adds chunked responses: when the client negotiates
//! [`FEATURE_CHUNKED_RESPONSES`], one logical response may arrive as any
//! number of [`STATUS_OK_PARTIAL`] frames followed by a final `STATUS_OK`
//! frame with the same id; the logical payload is the concatenation of the
//! partial bodies (in arrival order, which the server guarantees) plus the
//! final one. [`decode_response`] expects a fully reassembled payload; the
//! client does the reassembly.
//!
//! Every decoder in this module is **total**: arbitrary bytes produce a
//! structured [`DecodeError`], never a panic, and no length field is
//! trusted beyond the bytes actually present (so a hostile frame cannot
//! cause an oversized allocation). The proptests in `tests/server_codec.rs`
//! round-trip every frame shape and throw garbage/truncations at the
//! decoders.

use std::fmt;
use xdx_core::solution::SolutionError;
use xdx_patterns::QueryParseError;
use xdx_xmltree::binary::BinaryError;
use xdx_xmltree::{parse_tree, tree_to_text, TreeTextError, XmlTree};

/// Hard protocol cap on documents per request (servers may configure a
/// lower one).
pub const MAX_DOCS_PER_REQUEST: usize = 1024;

/// Default cap on a request frame's payload size (servers may configure).
/// Shared with the codecs' own guard rails (`xdx_xmltree::limits`).
pub const DEFAULT_MAX_FRAME_BYTES: usize = xdx_xmltree::limits::DEFAULT_FRAME_BYTES;

/// Feature flag: documents travel as [`xdx_xmltree::binary`] frames instead
/// of tree text (both directions).
pub const FEATURE_BINARY_DOCS: u32 = 1 << 0;

/// Feature flag: the server may split OK responses into
/// [`STATUS_OK_PARTIAL`] chunk frames.
pub const FEATURE_CHUNKED_RESPONSES: u32 = 1 << 1;

/// Feature flag (v3): multi-tenant settings. After negotiation every
/// request payload carries a **setting id** (u64, directly after the
/// request id) naming the setting binding the request addresses — id 0 is
/// the setting the server was started with — and the registry ops
/// ([`OpCode::PutSetting`], [`OpCode::ListSettings`],
/// [`OpCode::EvictSetting`]) become available. Connections that do not
/// negotiate this bit keep the v1/v2 layout byte for byte and implicitly
/// address setting 0.
pub const FEATURE_SETTINGS: u32 = 1 << 2;

/// Feature flag (v5): typed histogram rows in [`ResponseBody::StatsOk`].
/// After negotiation, `Stats` responses append a histogram section (count
/// plus [`StatsHistogram`] rows) behind the counter rows. Connections that
/// do not negotiate this bit receive the v4 counters-only encoding byte
/// for byte — the section is never present there, not merely empty.
pub const FEATURE_STATS_V2: u32 = 1 << 3;

/// All feature bits this implementation understands; a server answers
/// `Hello` with the intersection of this mask and the client's request.
pub const SUPPORTED_FEATURES: u32 =
    FEATURE_BINARY_DOCS | FEATURE_CHUNKED_RESPONSES | FEATURE_SETTINGS | FEATURE_STATS_V2;

/// Which document codec a connection speaks. Text is the v1 format and the
/// v2 default; Binary is switched on per connection by a successful
/// [`RequestBody::Hello`] negotiation of [`FEATURE_BINARY_DOCS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Lossless tree text ([`xdx_xmltree::text`]).
    #[default]
    Text,
    /// Binary preorder frames ([`xdx_xmltree::binary`]).
    Binary,
}

impl Codec {
    /// Parse a codec name as used by `XDX_WIRE_CODEC` and CLI flags.
    pub fn from_name(name: &str) -> Option<Codec> {
        match name {
            "text" => Some(Codec::Text),
            "binary" => Some(Codec::Binary),
            _ => None,
        }
    }

    /// The lowercase name (`"text"` / `"binary"`).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Text => "text",
            Codec::Binary => "binary",
        }
    }
}

/// A document as it travels on the wire, in either codec. Framing is
/// codec-independent (a length-prefixed blob); only the interpretation of
/// the bytes differs, so the variant must match the connection's
/// negotiated codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDoc {
    /// Tree text ([`xdx_xmltree::text`]); must be valid UTF-8.
    Text(String),
    /// A binary preorder frame ([`xdx_xmltree::binary`]).
    Binary(Vec<u8>),
}

impl WireDoc {
    /// Serialize `tree` in the given codec.
    pub fn from_tree(tree: &XmlTree, codec: Codec) -> WireDoc {
        match codec {
            Codec::Text => WireDoc::Text(tree_to_text(tree)),
            Codec::Binary => WireDoc::Binary(xdx_xmltree::binary::encode_tree(tree)),
        }
    }

    /// Parse back into a tree ([`ErrorCode::TreeParse`] /
    /// [`ErrorCode::BinaryDoc`] on failure).
    pub fn to_tree(&self) -> Result<XmlTree, WireError> {
        match self {
            WireDoc::Text(text) => {
                parse_tree(text).map_err(|e| WireError::new(ErrorCode::TreeParse, e.to_string()))
            }
            WireDoc::Binary(bytes) => xdx_xmltree::binary::decode_tree(bytes)
                .map_err(|e| WireError::new(ErrorCode::BinaryDoc, e.to_string())),
        }
    }

    /// The codec this document is serialized in.
    pub fn codec(&self) -> Codec {
        match self {
            WireDoc::Text(_) => Codec::Text,
            WireDoc::Binary(_) => Codec::Binary,
        }
    }

    /// The raw payload bytes (text bytes or binary frame).
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            WireDoc::Text(text) => text.as_bytes(),
            WireDoc::Binary(bytes) => bytes,
        }
    }

    /// The tree text, when this is a text document.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            WireDoc::Text(text) => Some(text),
            WireDoc::Binary(_) => None,
        }
    }
}

impl From<&str> for WireDoc {
    fn from(s: &str) -> WireDoc {
        WireDoc::Text(s.to_string())
    }
}

impl From<String> for WireDoc {
    fn from(s: String) -> WireDoc {
        WireDoc::Text(s)
    }
}

/// Operation selector of a request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Health check; echoes the request id.
    Ping = 0,
    /// Per-document consistency: conforming source with a solution?
    CheckConsistency = 1,
    /// Canonical solution (Section 6.1 chase) per document.
    CanonicalSolution = 2,
    /// Certain answers of a query per document.
    CertainAnswers = 3,
    /// Certain answer of a Boolean query per document.
    CertainAnswersBoolean = 4,
    /// Protocol v2 feature negotiation (codec, chunked responses).
    Hello = 5,
    /// Store a document under an id in the server's resident store (v2).
    PutDoc = 6,
    /// Fetch a stored document and its version (v2).
    GetDoc = 7,
    /// Apply a batch of node-local edits to a stored document (v2).
    EditDoc = 8,
    /// Remove a stored document (v2).
    DeleteDoc = 9,
    /// [`OpCode::CheckConsistency`] of one *stored* document (v2).
    /// Responds with the base op's response shape, byte for byte.
    CheckConsistencyStored = 10,
    /// [`OpCode::CanonicalSolution`] of one stored document (v2).
    CanonicalSolutionStored = 11,
    /// [`OpCode::CertainAnswers`] over one stored document (v2).
    CertainAnswersStored = 12,
    /// [`OpCode::CertainAnswersBoolean`] over one stored document (v2).
    CertainAnswersBooleanStored = 13,
    /// Upload a setting's text and bind it to a setting id (v3).
    PutSetting = 14,
    /// List the server's setting bindings (v3).
    ListSettings = 15,
    /// Drop a binding's compiled artifact from the cache (v3).
    EvictSetting = 16,
    /// Fetch the server's operational counters (v4). Ungated, like the
    /// store ops: servers that predate it answer `UnknownOp`, which is a
    /// complete, honest negotiation.
    Stats = 17,
}

impl OpCode {
    pub(crate) fn from_u8(op: u8) -> Option<OpCode> {
        match op {
            0 => Some(OpCode::Ping),
            1 => Some(OpCode::CheckConsistency),
            2 => Some(OpCode::CanonicalSolution),
            3 => Some(OpCode::CertainAnswers),
            4 => Some(OpCode::CertainAnswersBoolean),
            5 => Some(OpCode::Hello),
            6 => Some(OpCode::PutDoc),
            7 => Some(OpCode::GetDoc),
            8 => Some(OpCode::EditDoc),
            9 => Some(OpCode::DeleteDoc),
            10 => Some(OpCode::CheckConsistencyStored),
            11 => Some(OpCode::CanonicalSolutionStored),
            12 => Some(OpCode::CertainAnswersStored),
            13 => Some(OpCode::CertainAnswersBooleanStored),
            14 => Some(OpCode::PutSetting),
            15 => Some(OpCode::ListSettings),
            16 => Some(OpCode::EvictSetting),
            17 => Some(OpCode::Stats),
            _ => None,
        }
    }

    /// Short lower-case identifier for metric keys and log lines — stable
    /// across versions (`req.{name}.…` Stats-v2 rows are part of the wire
    /// vocabulary, see `PROTOCOL.md`).
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Ping => "ping",
            OpCode::CheckConsistency => "check",
            OpCode::CanonicalSolution => "solution",
            OpCode::CertainAnswers => "answers",
            OpCode::CertainAnswersBoolean => "boolean",
            OpCode::Hello => "hello",
            OpCode::PutDoc => "put_doc",
            OpCode::GetDoc => "get_doc",
            OpCode::EditDoc => "edit_doc",
            OpCode::DeleteDoc => "delete_doc",
            OpCode::CheckConsistencyStored => "check_stored",
            OpCode::CanonicalSolutionStored => "solution_stored",
            OpCode::CertainAnswersStored => "answers_stored",
            OpCode::CertainAnswersBooleanStored => "boolean_stored",
            OpCode::PutSetting => "put_setting",
            OpCode::ListSettings => "list_settings",
            OpCode::EvictSetting => "evict_setting",
            OpCode::Stats => "stats",
        }
    }
}

/// Stable error codes carried by error frames and per-document error
/// results — one for every failure the serving pipeline can produce,
/// covering the whole [`SolutionError`] enum, both halves of
/// [`QueryParseError`], tree-text errors and the protocol-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The payload does not decode (bad lengths, bad UTF-8, trailing bytes).
    MalformedFrame = 1,
    /// The frame's announced length exceeds the server's configured cap.
    FrameTooLarge = 2,
    /// Unknown op code.
    UnknownOp = 3,
    /// More documents than the protocol or the server allows.
    TooManyDocs = 4,
    /// A document failed to parse ([`TreeTextError`]).
    TreeParse = 5,
    /// The query text failed to parse ([`QueryParseError::Syntax`]).
    QuerySyntax = 6,
    /// [`xdx_patterns::query::QueryError::UnboundHeadVariable`].
    QueryUnboundHeadVariable = 7,
    /// [`xdx_patterns::query::QueryError::MismatchedArity`].
    QueryMismatchedArity = 8,
    /// [`xdx_patterns::query::QueryError::EmptyUnion`].
    QueryEmptyUnion = 9,
    /// A binary document frame failed to decode
    /// ([`xdx_xmltree::binary::BinaryError`]). v2.
    BinaryDoc = 10,
    /// A store op named a document id the store does not hold. v2.
    UnknownDoc = 11,
    /// An `EditDoc` base version did not match the document's current
    /// version (another client edited it first). v2.
    VersionConflict = 12,
    /// An edit batch was malformed or not applicable to the document
    /// (rank out of range, missing attribute, …). v2.
    BadEdit = 13,
    /// A store op reached a server that mounts no document store. v2.
    StoreDisabled = 14,
    /// The store's resident-document admission cap is reached. v2.
    StoreFull = 15,
    /// The store failed at the storage layer (I/O error, corrupt
    /// snapshot/WAL). v2.
    StoreIo = 16,
    /// A `PutDoc`/`EditDoc` would grow the document's binary encoding past
    /// the codec's hard cap. v2.
    DocTooLarge = 17,
    /// The request named a setting id with no binding (or a registry op
    /// named the reserved default binding 0). v3.
    UnknownSetting = 18,
    /// The uploaded setting text failed to parse
    /// ([`xdx_core::SettingTextError`]). v3.
    SettingParse = 19,
    /// The uploaded setting parsed but was rejected by compilation
    /// (semantic validation). v3.
    SettingReject = 20,
    /// A registry limit was hit (binding count, compiled-cost budget, or
    /// per-setting admission). v3.
    SettingLimit = 21,
    /// The store is in sticky degraded read-only mode after a storage
    /// fault (a failed fsync is never retried); mutations are rejected
    /// until the operator restarts the server, reads keep working. v4.
    StoreDegraded = 22,

    /// [`SolutionError::NotFullySpecified`].
    NotFullySpecified = 100,
    /// [`SolutionError::DisallowedAttribute`].
    DisallowedAttribute = 101,
    /// [`SolutionError::AttributeClash`].
    AttributeClash = 102,
    /// [`SolutionError::NoRepair`].
    NoRepair = 103,
    /// [`SolutionError::NoMaximumRepair`].
    NoMaximumRepair = 104,
    /// [`SolutionError::UnknownTargetElement`].
    UnknownTargetElement = 105,
    /// [`SolutionError::WildcardInTarget`].
    WildcardInTarget = 106,
    /// [`SolutionError::ChaseBudgetExceeded`].
    ChaseBudgetExceeded = 107,
    /// [`SolutionError::RepairBudgetExceeded`].
    RepairBudgetExceeded = 108,
}

impl ErrorCode {
    /// Decode a wire code.
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match code {
            1 => MalformedFrame,
            2 => FrameTooLarge,
            3 => UnknownOp,
            4 => TooManyDocs,
            5 => TreeParse,
            6 => QuerySyntax,
            7 => QueryUnboundHeadVariable,
            8 => QueryMismatchedArity,
            9 => QueryEmptyUnion,
            10 => BinaryDoc,
            11 => UnknownDoc,
            12 => VersionConflict,
            13 => BadEdit,
            14 => StoreDisabled,
            15 => StoreFull,
            16 => StoreIo,
            17 => DocTooLarge,
            18 => UnknownSetting,
            19 => SettingParse,
            20 => SettingReject,
            21 => SettingLimit,
            22 => StoreDegraded,
            100 => NotFullySpecified,
            101 => DisallowedAttribute,
            102 => AttributeClash,
            103 => NoRepair,
            104 => NoMaximumRepair,
            105 => UnknownTargetElement,
            106 => WildcardInTarget,
            107 => ChaseBudgetExceeded,
            108 => RepairBudgetExceeded,
            _ => return None,
        })
    }
}

/// A structured error as it travels on the wire: a stable code plus the
/// human-readable rendering of the underlying error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable error code.
    pub code: ErrorCode,
    /// Human-readable detail (the `Display` of the source error).
    pub message: String,
}

impl WireError {
    /// Build from any message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Map a [`SolutionError`] to its wire form (every variant has a code).
    pub fn of_solution_error(e: &SolutionError) -> WireError {
        let code = match e {
            SolutionError::NotFullySpecified { .. } => ErrorCode::NotFullySpecified,
            SolutionError::DisallowedAttribute { .. } => ErrorCode::DisallowedAttribute,
            SolutionError::AttributeClash { .. } => ErrorCode::AttributeClash,
            SolutionError::NoRepair { .. } => ErrorCode::NoRepair,
            SolutionError::NoMaximumRepair { .. } => ErrorCode::NoMaximumRepair,
            SolutionError::UnknownTargetElement { .. } => ErrorCode::UnknownTargetElement,
            SolutionError::WildcardInTarget { .. } => ErrorCode::WildcardInTarget,
            SolutionError::ChaseBudgetExceeded { .. } => ErrorCode::ChaseBudgetExceeded,
            SolutionError::RepairBudgetExceeded { .. } => ErrorCode::RepairBudgetExceeded,
        };
        WireError::new(code, e.to_string())
    }

    /// Map a query parse failure (either half of [`QueryParseError`]).
    pub fn of_query_error(e: &QueryParseError) -> WireError {
        use xdx_patterns::query::QueryError;
        let code = match e {
            QueryParseError::Syntax(_) => ErrorCode::QuerySyntax,
            QueryParseError::Invalid(QueryError::UnboundHeadVariable { .. }) => {
                ErrorCode::QueryUnboundHeadVariable
            }
            QueryParseError::Invalid(QueryError::MismatchedArity { .. }) => {
                ErrorCode::QueryMismatchedArity
            }
            QueryParseError::Invalid(QueryError::EmptyUnion) => ErrorCode::QueryEmptyUnion,
        };
        WireError::new(code, e.to_string())
    }

    /// Map a tree-text parse failure (with the failing document's index).
    pub fn of_tree_error(doc_index: usize, e: &TreeTextError) -> WireError {
        WireError::new(ErrorCode::TreeParse, format!("document {doc_index}: {e}"))
    }

    /// Map a binary-frame decode failure (with the failing document's
    /// index).
    pub fn of_binary_error(doc_index: usize, e: &BinaryError) -> WireError {
        WireError::new(ErrorCode::BinaryDoc, format!("document {doc_index}: {e}"))
    }

    /// Map a document-store failure (every variant has a code).
    pub fn of_store_error(e: &xdx_store::StoreError) -> WireError {
        use xdx_store::StoreError;
        let code = match e {
            StoreError::UnknownDoc { .. } => ErrorCode::UnknownDoc,
            StoreError::VersionConflict { .. } => ErrorCode::VersionConflict,
            StoreError::BadEdit(_) => ErrorCode::BadEdit,
            StoreError::StoreFull { .. } => ErrorCode::StoreFull,
            StoreError::DocTooLarge { .. } => ErrorCode::DocTooLarge,
            StoreError::Degraded { .. } => ErrorCode::StoreDegraded,
            // `Locked` can only surface at open time, before any request,
            // but the mapping is total so new callers cannot miss it.
            StoreError::Io(_) | StoreError::Corrupt { .. } | StoreError::Locked { .. } => {
                ErrorCode::StoreIo
            }
        };
        WireError::new(code, e.to_string())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen id, echoed verbatim in the response (responses may
    /// arrive out of order under pipelining).
    pub id: u64,
    /// The setting binding this request addresses (v3). On the wire only
    /// after [`FEATURE_SETTINGS`] negotiation; always `0` — the default
    /// setting — on v1/v2 connections.
    pub setting_id: u64,
    /// The operation and its arguments.
    pub body: RequestBody,
}

impl RequestFrame {
    /// A frame addressing the default setting (what v1/v2 always do).
    pub fn new(id: u64, body: RequestBody) -> RequestFrame {
        RequestFrame {
            id,
            setting_id: 0,
            body,
        }
    }
}

/// The operation of a request, with documents/queries still in wire form
/// (parsing happens in the worker pool, off the event loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Health check.
    Ping,
    /// Feature negotiation (v2): the client proposes a feature set, the
    /// server answers [`ResponseBody::HelloOk`] with the accepted subset,
    /// which takes effect for every subsequent frame on the connection.
    Hello {
        /// Requested feature bits (`FEATURE_*`).
        features: u32,
    },
    /// Consistency of each document.
    CheckConsistency {
        /// Source documents.
        docs: Vec<WireDoc>,
    },
    /// Canonical solution of each document.
    CanonicalSolution {
        /// Source documents.
        docs: Vec<WireDoc>,
    },
    /// Certain answers of `query` for each document.
    CertainAnswers {
        /// The query (rule syntax).
        query: String,
        /// Source documents.
        docs: Vec<WireDoc>,
    },
    /// Certain Boolean answer of `query` for each document.
    CertainAnswersBoolean {
        /// The query (rule syntax).
        query: String,
        /// Source documents.
        docs: Vec<WireDoc>,
    },
    /// Store `doc` under `doc_id` in the server's resident store (v2).
    /// Overwrites any existing document under that id, advancing its
    /// version.
    PutDoc {
        /// Client-chosen document id.
        doc_id: u64,
        /// The document, in the connection codec.
        doc: WireDoc,
    },
    /// Fetch a stored document (v2).
    GetDoc {
        /// The document id.
        doc_id: u64,
    },
    /// Apply an edit batch to a stored document (v2). `edits` is the
    /// store's own edit encoding (`xdx_store::encode_edits`), carried as
    /// an opaque blob so the wire layer stays format-agnostic.
    EditDoc {
        /// The document id.
        doc_id: u64,
        /// Compare-and-swap guard: the edit applies only if the document
        /// is still at this version. `0` skips the check.
        base_version: u64,
        /// Encoded edit batch (`xdx_store::encode_edits`).
        edits: Vec<u8>,
    },
    /// Remove a stored document (v2).
    DeleteDoc {
        /// The document id.
        doc_id: u64,
    },
    /// [`RequestBody::CheckConsistency`] of one stored document (v2). The
    /// response is the base op's response, byte for byte (a one-document
    /// batch).
    CheckConsistencyStored {
        /// The document id.
        doc_id: u64,
    },
    /// [`RequestBody::CanonicalSolution`] of one stored document (v2).
    CanonicalSolutionStored {
        /// The document id.
        doc_id: u64,
    },
    /// [`RequestBody::CertainAnswers`] over one stored document (v2).
    CertainAnswersStored {
        /// The query (rule syntax).
        query: String,
        /// The document id.
        doc_id: u64,
    },
    /// [`RequestBody::CertainAnswersBoolean`] over one stored document
    /// (v2).
    CertainAnswersBooleanStored {
        /// The query (rule syntax).
        query: String,
        /// The document id.
        doc_id: u64,
    },
    /// Upload a setting in the text syntax of `xdx_core::settext` and bind
    /// `bind_id` to it (v3). Identical text re-uses the cached compilation
    /// (the response says so); rebinding to *different* text invalidates
    /// the binding's cached answers and validation baselines, while its
    /// stored documents survive.
    PutSetting {
        /// The binding id to create or rebind. `0` — the default setting
        /// the server was started with — is reserved and rejected.
        bind_id: u64,
        /// The setting text (`source {…} target {…} std …;`).
        text: String,
    },
    /// List the server's setting bindings (v3).
    ListSettings,
    /// Drop a binding's *compiled* artifact (v3). The binding, its text
    /// and its stored documents survive; the next request against the
    /// binding recompiles from the retained text.
    EvictSetting {
        /// The binding id (`0` is rejected: the default setting is pinned).
        bind_id: u64,
    },
    /// Fetch the server's operational counters (v4): uptime, in-flight
    /// highwater marks, registry and store cache hit rates, fault and
    /// degraded-mode counters. Carries no arguments.
    Stats,
}

/// One row of a [`ResponseBody::SettingList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettingEntry {
    /// The binding id.
    pub bind_id: u64,
    /// FNV-1a hash of the bound setting's canonical text (identical
    /// uploads share it).
    pub content_hash: u64,
    /// Is a compiled artifact currently resident for this binding?
    pub compiled: bool,
    /// The compiled artifact's cost in the LRU budget's unit (canonical
    /// text bytes).
    pub cost: u64,
}

impl RequestBody {
    /// The op code this body encodes as.
    pub fn op(&self) -> OpCode {
        match self {
            RequestBody::Ping => OpCode::Ping,
            RequestBody::Hello { .. } => OpCode::Hello,
            RequestBody::CheckConsistency { .. } => OpCode::CheckConsistency,
            RequestBody::CanonicalSolution { .. } => OpCode::CanonicalSolution,
            RequestBody::CertainAnswers { .. } => OpCode::CertainAnswers,
            RequestBody::CertainAnswersBoolean { .. } => OpCode::CertainAnswersBoolean,
            RequestBody::PutDoc { .. } => OpCode::PutDoc,
            RequestBody::GetDoc { .. } => OpCode::GetDoc,
            RequestBody::EditDoc { .. } => OpCode::EditDoc,
            RequestBody::DeleteDoc { .. } => OpCode::DeleteDoc,
            RequestBody::CheckConsistencyStored { .. } => OpCode::CheckConsistencyStored,
            RequestBody::CanonicalSolutionStored { .. } => OpCode::CanonicalSolutionStored,
            RequestBody::CertainAnswersStored { .. } => OpCode::CertainAnswersStored,
            RequestBody::CertainAnswersBooleanStored { .. } => OpCode::CertainAnswersBooleanStored,
            RequestBody::PutSetting { .. } => OpCode::PutSetting,
            RequestBody::ListSettings => OpCode::ListSettings,
            RequestBody::EvictSetting { .. } => OpCode::EvictSetting,
            RequestBody::Stats => OpCode::Stats,
        }
    }

    /// Number of documents carried. Note the server's in-flight budget
    /// counts *requests*, not documents — a full micro-batch occupies one
    /// budget slot (size the budget against
    /// `max_inflight_total × max_docs_per_request` documents of work).
    pub fn doc_count(&self) -> usize {
        match self {
            RequestBody::Ping | RequestBody::Hello { .. } => 0,
            RequestBody::CheckConsistency { docs }
            | RequestBody::CanonicalSolution { docs }
            | RequestBody::CertainAnswers { docs, .. }
            | RequestBody::CertainAnswersBoolean { docs, .. } => docs.len(),
            RequestBody::PutDoc { .. } => 1,
            RequestBody::GetDoc { .. }
            | RequestBody::EditDoc { .. }
            | RequestBody::DeleteDoc { .. }
            | RequestBody::CheckConsistencyStored { .. }
            | RequestBody::CanonicalSolutionStored { .. }
            | RequestBody::CertainAnswersStored { .. }
            | RequestBody::CertainAnswersBooleanStored { .. }
            | RequestBody::PutSetting { .. }
            | RequestBody::ListSettings
            | RequestBody::EvictSetting { .. }
            | RequestBody::Stats => 0,
        }
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The request id this answers.
    pub id: u64,
    /// The outcome.
    pub body: ResponseBody,
}

/// Per-document outcome: the op's result or a structured error.
pub type DocResult<T> = Result<T, WireError>;

/// The outcome carried by a response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// Reply to [`RequestBody::Ping`].
    Pong,
    /// Reply to [`RequestBody::Hello`]: the accepted feature subset.
    HelloOk {
        /// Accepted feature bits (requested ∩ [`SUPPORTED_FEATURES`]).
        features: u32,
    },
    /// The server is saturated (in-flight budget or per-connection
    /// pipelining cap); retry later. Carries no results.
    Busy,
    /// The whole request failed (malformed frame, bad query, …).
    Error(WireError),
    /// Per-document consistency verdicts.
    Consistency(Vec<bool>),
    /// Per-document canonical solutions (in the connection codec) or
    /// errors.
    Solutions(Vec<DocResult<WireDoc>>),
    /// Per-document certain-answer tuple sets (each tuple a row of
    /// constants, rows in the deterministic `BTreeSet` order) or errors.
    Answers(Vec<DocResult<Vec<Vec<String>>>>),
    /// Per-document Boolean certain answers or errors.
    Booleans(Vec<DocResult<bool>>),
    /// Reply to [`RequestBody::PutDoc`]: the stored document's new version.
    PutDocOk {
        /// Version after the put (1 for a fresh id).
        version: u64,
    },
    /// Reply to [`RequestBody::GetDoc`]: the document and its version.
    GetDocOk {
        /// Current version.
        version: u64,
        /// The document, in the connection codec.
        doc: WireDoc,
    },
    /// Reply to [`RequestBody::EditDoc`]: the version after the batch.
    EditDocOk {
        /// Version after the edit batch applied.
        version: u64,
    },
    /// Reply to [`RequestBody::DeleteDoc`].
    DeleteDocOk,
    /// Reply to [`RequestBody::PutSetting`] (v3).
    PutSettingOk {
        /// Content hash of the accepted setting text.
        content_hash: u64,
        /// Whether an identical-text compilation was reused (the upload
        /// cost no compile).
        reused: bool,
    },
    /// Reply to [`RequestBody::ListSettings`] (v3).
    SettingList {
        /// One row per binding, ascending by binding id.
        entries: Vec<SettingEntry>,
    },
    /// Reply to [`RequestBody::EvictSetting`] (v3).
    EvictSettingOk {
        /// Whether a compiled artifact was actually dropped (`false` when
        /// the binding was already cold).
        dropped: bool,
    },
    /// The server is draining for shutdown (v4): this request was *not*
    /// executed; the connection will close once in-flight responses have
    /// flushed. Safe to retry any op against another (or a restarted)
    /// server. Carries no results.
    GoAway,
    /// Reply to [`RequestBody::Stats`] (v4): named counters, ascending by
    /// name. The set of names is additive across versions — clients must
    /// ignore names they do not know.
    StatsOk {
        /// `(name, value)` rows, ascending by name.
        counters: Vec<(String, u64)>,
        /// Histogram rows, ascending by name — present on the wire only
        /// when [`FEATURE_STATS_V2`] was negotiated (and, like the
        /// counters, additive: unknown names must be ignored). Always
        /// empty on non-negotiated connections.
        histograms: Vec<StatsHistogram>,
    },
}

/// One typed histogram row of a Stats-v2 response: a sparse snapshot of an
/// [`xdx_obs::Histogram`] — summary moments plus the non-zero log₂ buckets
/// (`(bucket index, count)`, ascending by index). Reconstruct quantiles
/// client-side with [`xdx_obs::HistogramSnapshot::from_sparse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsHistogram {
    /// Metric name (`req.{op}.s{setting}.{phase}`, `store.fsync`, …).
    pub name: String,
    /// Unit tag ([`xdx_obs::Unit::tag`]: 0 nanoseconds, 1 count, 2 bytes;
    /// unknown tags decode as count).
    pub unit: u8,
    /// Total recorded observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when `count` is 0).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(bucket index, count)` for each non-zero bucket, ascending index.
    pub buckets: Vec<(u8, u64)>,
}

/// Response status: success, body follows.
pub const STATUS_OK: u8 = 0;
/// Response status: whole-request error, a [`WireError`] follows.
pub const STATUS_ERROR: u8 = 1;
/// Response status: server saturated, no body.
pub const STATUS_BUSY: u8 = 2;
/// Response status (v2, negotiated): a chunk of a logical OK response;
/// more frames with the same id follow, the last one carrying
/// [`STATUS_OK`]. Only sent after [`FEATURE_CHUNKED_RESPONSES`] was
/// accepted on the connection.
pub const STATUS_OK_PARTIAL: u8 = 3;
/// Response status (v4): the server is draining for shutdown; the request
/// was not executed and the connection will close after in-flight
/// responses flush. No body. Like [`STATUS_BUSY`], always safe to retry —
/// the server never starts work on a request it answers this way.
pub const STATUS_GOAWAY: u8 = 4;

/// A failure to decode a payload, with the request id when it was readable
/// (so the error frame can still be correlated by the client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The id echoed back (0 when the payload was too short to carry one).
    pub id: u64,
    /// What went wrong.
    pub error: WireError,
}

impl DecodeError {
    fn new(id: u64, code: ErrorCode, message: impl Into<String>) -> DecodeError {
        DecodeError {
            id,
            error: WireError::new(code, message),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    id: u64,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, id: 0 }
    }

    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError::new(self.id, ErrorCode::MalformedFrame, message)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!(
                "payload truncated: need {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("string is not valid UTF-8"))
    }

    fn blob(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn has_remaining(&self) -> bool {
        self.pos < self.buf.len()
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            Err(self.err(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            )))
        } else {
            Ok(())
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(
        out,
        u32::try_from(s.len()).expect("string exceeds u32::MAX bytes"),
    );
    out.extend_from_slice(s.as_bytes());
}

fn put_wire_error(out: &mut Vec<u8>, e: &WireError) {
    put_u16(out, e.code as u16);
    put_string(out, &e.message);
}

fn read_wire_error(r: &mut Reader<'_>) -> Result<WireError, DecodeError> {
    let raw = r.u16()?;
    let code =
        ErrorCode::from_u16(raw).ok_or_else(|| r.err(format!("unknown error code {raw}")))?;
    let message = r.string()?;
    Ok(WireError { code, message })
}

fn put_doc_result<T>(out: &mut Vec<u8>, result: &DocResult<T>, put: impl Fn(&mut Vec<u8>, &T)) {
    match result {
        Ok(v) => {
            out.push(0);
            put(out, v);
        }
        Err(e) => {
            out.push(1);
            put_wire_error(out, e);
        }
    }
}

fn read_doc_result<T>(
    r: &mut Reader<'_>,
    read: impl Fn(&mut Reader<'_>) -> Result<T, DecodeError>,
) -> Result<DocResult<T>, DecodeError> {
    match r.u8()? {
        0 => Ok(Ok(read(r)?)),
        1 => Ok(Err(read_wire_error(r)?)),
        t => Err(r.err(format!("unknown result tag {t}"))),
    }
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, DecodeError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(r.err(format!("bad boolean {b}"))),
    }
}

fn read_doc(r: &mut Reader<'_>, codec: Codec) -> Result<WireDoc, DecodeError> {
    match codec {
        Codec::Text => Ok(WireDoc::Text(r.string()?)),
        Codec::Binary => Ok(WireDoc::Binary(r.blob()?)),
    }
}

fn put_doc(out: &mut Vec<u8>, doc: &WireDoc) {
    let bytes = doc.as_bytes();
    put_u32(
        out,
        u32::try_from(bytes.len()).expect("document exceeds u32::MAX bytes"),
    );
    out.extend_from_slice(bytes);
}

fn read_docs(
    r: &mut Reader<'_>,
    max_docs: usize,
    codec: Codec,
) -> Result<Vec<WireDoc>, DecodeError> {
    let n = r.u16()? as usize;
    if n > MAX_DOCS_PER_REQUEST.min(max_docs) {
        return Err(DecodeError::new(
            r.id,
            ErrorCode::TooManyDocs,
            format!(
                "{n} documents exceed the limit of {}",
                MAX_DOCS_PER_REQUEST.min(max_docs)
            ),
        ));
    }
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        docs.push(read_doc(r, codec)?);
    }
    Ok(docs)
}

fn put_docs(out: &mut Vec<u8>, docs: &[WireDoc]) {
    put_u16(
        out,
        u16::try_from(docs.len()).expect("doc count exceeds u16"),
    );
    for d in docs {
        put_doc(out, d);
    }
}

// ---------------------------------------------------------------------------
// Frame encoding/decoding
// ---------------------------------------------------------------------------

/// Wrap a payload in its `[len: u32 BE]` prefix.
pub fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    put_u32(
        &mut out,
        u32::try_from(payload.len()).expect("payload exceeds u32::MAX bytes"),
    );
    out.extend_from_slice(&payload);
    out
}

/// Encode a request payload into `out` (no length prefix; see [`frame`]).
/// Appends without clearing, so a caller can reserve framing bytes first
/// and reuse one buffer across pipelined requests. `settings` says whether
/// [`FEATURE_SETTINGS`] was negotiated on the connection — only then does
/// the frame carry its setting id.
pub fn encode_request_into(req: &RequestFrame, settings: bool, out: &mut Vec<u8>) {
    out.push(req.body.op() as u8);
    put_u64(out, req.id);
    if settings {
        put_u64(out, req.setting_id);
    }
    match &req.body {
        RequestBody::Ping => {}
        RequestBody::Hello { features } => put_u32(out, *features),
        RequestBody::CheckConsistency { docs } | RequestBody::CanonicalSolution { docs } => {
            put_docs(out, docs);
        }
        RequestBody::CertainAnswers { query, docs }
        | RequestBody::CertainAnswersBoolean { query, docs } => {
            put_string(out, query);
            put_docs(out, docs);
        }
        RequestBody::PutDoc { doc_id, doc } => {
            put_u64(out, *doc_id);
            put_doc(out, doc);
        }
        RequestBody::GetDoc { doc_id }
        | RequestBody::DeleteDoc { doc_id }
        | RequestBody::CheckConsistencyStored { doc_id }
        | RequestBody::CanonicalSolutionStored { doc_id } => put_u64(out, *doc_id),
        RequestBody::EditDoc {
            doc_id,
            base_version,
            edits,
        } => {
            put_u64(out, *doc_id);
            put_u64(out, *base_version);
            put_u32(
                out,
                u32::try_from(edits.len()).expect("edit batch exceeds u32::MAX bytes"),
            );
            out.extend_from_slice(edits);
        }
        RequestBody::CertainAnswersStored { query, doc_id }
        | RequestBody::CertainAnswersBooleanStored { query, doc_id } => {
            put_string(out, query);
            put_u64(out, *doc_id);
        }
        RequestBody::PutSetting { bind_id, text } => {
            put_u64(out, *bind_id);
            put_string(out, text);
        }
        RequestBody::ListSettings => {}
        RequestBody::EvictSetting { bind_id } => put_u64(out, *bind_id),
        RequestBody::Stats => {}
    }
}

/// Encode a request payload (no length prefix; see [`frame`]).
pub fn encode_request(req: &RequestFrame, settings: bool) -> Vec<u8> {
    let mut out = Vec::new();
    encode_request_into(req, settings, &mut out);
    out
}

/// Decode a request payload. `max_docs` is the server's configured
/// per-request document cap (the protocol cap [`MAX_DOCS_PER_REQUEST`]
/// applies on top); `codec` is the connection's negotiated document codec;
/// `settings` says whether [`FEATURE_SETTINGS`] was negotiated (only then
/// does the frame carry a setting id).
pub fn decode_request(
    payload: &[u8],
    max_docs: usize,
    codec: Codec,
    settings: bool,
) -> Result<RequestFrame, DecodeError> {
    let mut r = Reader::new(payload);
    let op_raw = r.u8()?;
    r.id = r.u64()?;
    let setting_id = if settings { r.u64()? } else { 0 };
    let op = OpCode::from_u8(op_raw).ok_or_else(|| {
        DecodeError::new(r.id, ErrorCode::UnknownOp, format!("unknown op {op_raw}"))
    })?;
    let body = match op {
        OpCode::Ping => RequestBody::Ping,
        OpCode::Hello => RequestBody::Hello { features: r.u32()? },
        OpCode::CheckConsistency => RequestBody::CheckConsistency {
            docs: read_docs(&mut r, max_docs, codec)?,
        },
        OpCode::CanonicalSolution => RequestBody::CanonicalSolution {
            docs: read_docs(&mut r, max_docs, codec)?,
        },
        OpCode::CertainAnswers => {
            let query = r.string()?;
            RequestBody::CertainAnswers {
                query,
                docs: read_docs(&mut r, max_docs, codec)?,
            }
        }
        OpCode::CertainAnswersBoolean => {
            let query = r.string()?;
            RequestBody::CertainAnswersBoolean {
                query,
                docs: read_docs(&mut r, max_docs, codec)?,
            }
        }
        OpCode::PutDoc => RequestBody::PutDoc {
            doc_id: r.u64()?,
            doc: read_doc(&mut r, codec)?,
        },
        OpCode::GetDoc => RequestBody::GetDoc { doc_id: r.u64()? },
        OpCode::EditDoc => RequestBody::EditDoc {
            doc_id: r.u64()?,
            base_version: r.u64()?,
            edits: r.blob()?,
        },
        OpCode::DeleteDoc => RequestBody::DeleteDoc { doc_id: r.u64()? },
        OpCode::CheckConsistencyStored => RequestBody::CheckConsistencyStored { doc_id: r.u64()? },
        OpCode::CanonicalSolutionStored => {
            RequestBody::CanonicalSolutionStored { doc_id: r.u64()? }
        }
        OpCode::CertainAnswersStored => RequestBody::CertainAnswersStored {
            query: r.string()?,
            doc_id: r.u64()?,
        },
        OpCode::CertainAnswersBooleanStored => RequestBody::CertainAnswersBooleanStored {
            query: r.string()?,
            doc_id: r.u64()?,
        },
        OpCode::PutSetting => RequestBody::PutSetting {
            bind_id: r.u64()?,
            text: r.string()?,
        },
        OpCode::ListSettings => RequestBody::ListSettings,
        OpCode::EvictSetting => RequestBody::EvictSetting { bind_id: r.u64()? },
        OpCode::Stats => RequestBody::Stats,
    };
    r.finish()?;
    Ok(RequestFrame {
        id: r.id,
        setting_id,
        body,
    })
}

/// Encode a response payload (no length prefix; see [`frame`]).
pub fn encode_response(resp: &ResponseFrame) -> Vec<u8> {
    let mut out = Vec::new();
    match &resp.body {
        ResponseBody::Error(e) => {
            out.push(STATUS_ERROR);
            put_u64(&mut out, resp.id);
            put_wire_error(&mut out, e);
        }
        ResponseBody::Busy => {
            out.push(STATUS_BUSY);
            put_u64(&mut out, resp.id);
        }
        ResponseBody::GoAway => {
            out.push(STATUS_GOAWAY);
            put_u64(&mut out, resp.id);
        }
        ResponseBody::Pong => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::Ping as u8);
        }
        ResponseBody::HelloOk { features } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::Hello as u8);
            put_u32(&mut out, *features);
        }
        ResponseBody::Consistency(flags) => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::CheckConsistency as u8);
            put_u16(
                &mut out,
                u16::try_from(flags.len()).expect("doc count exceeds u16"),
            );
            out.extend(flags.iter().map(|&b| b as u8));
        }
        ResponseBody::Solutions(results) => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::CanonicalSolution as u8);
            put_u16(
                &mut out,
                u16::try_from(results.len()).expect("doc count exceeds u16"),
            );
            for result in results {
                put_doc_result(&mut out, result, put_doc);
            }
        }
        ResponseBody::Answers(results) => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::CertainAnswers as u8);
            put_u16(
                &mut out,
                u16::try_from(results.len()).expect("doc count exceeds u16"),
            );
            for result in results {
                put_doc_result(&mut out, result, |out, tuples| {
                    put_u32(
                        out,
                        u32::try_from(tuples.len()).expect("tuple count exceeds u32"),
                    );
                    for tuple in tuples {
                        put_u16(out, u16::try_from(tuple.len()).expect("arity exceeds u16"));
                        for v in tuple {
                            put_string(out, v);
                        }
                    }
                });
            }
        }
        ResponseBody::Booleans(results) => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::CertainAnswersBoolean as u8);
            put_u16(
                &mut out,
                u16::try_from(results.len()).expect("doc count exceeds u16"),
            );
            for result in results {
                put_doc_result(&mut out, result, |out, &b| out.push(b as u8));
            }
        }
        ResponseBody::PutDocOk { version } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::PutDoc as u8);
            put_u64(&mut out, *version);
        }
        ResponseBody::GetDocOk { version, doc } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::GetDoc as u8);
            put_u64(&mut out, *version);
            put_doc(&mut out, doc);
        }
        ResponseBody::EditDocOk { version } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::EditDoc as u8);
            put_u64(&mut out, *version);
        }
        ResponseBody::DeleteDocOk => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::DeleteDoc as u8);
        }
        ResponseBody::PutSettingOk {
            content_hash,
            reused,
        } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::PutSetting as u8);
            put_u64(&mut out, *content_hash);
            out.push(*reused as u8);
        }
        ResponseBody::SettingList { entries } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::ListSettings as u8);
            put_u16(
                &mut out,
                u16::try_from(entries.len()).expect("binding count exceeds u16"),
            );
            for e in entries {
                put_u64(&mut out, e.bind_id);
                put_u64(&mut out, e.content_hash);
                out.push(e.compiled as u8);
                put_u64(&mut out, e.cost);
            }
        }
        ResponseBody::EvictSettingOk { dropped } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::EvictSetting as u8);
            out.push(*dropped as u8);
        }
        ResponseBody::StatsOk {
            counters,
            histograms,
        } => {
            out.push(STATUS_OK);
            put_u64(&mut out, resp.id);
            out.push(OpCode::Stats as u8);
            put_u16(
                &mut out,
                u16::try_from(counters.len()).expect("counter count exceeds u16"),
            );
            for (name, value) in counters {
                put_string(&mut out, name);
                put_u64(&mut out, *value);
            }
            // The v2 histogram section exists on the wire only when there
            // is one: a server that did not negotiate FEATURE_STATS_V2
            // passes an empty vec and the frame stays byte-identical to
            // the v4 encoding (pinned by `stats_v4_bytes_pinned`).
            if !histograms.is_empty() {
                put_u16(
                    &mut out,
                    u16::try_from(histograms.len()).expect("histogram count exceeds u16"),
                );
                for h in histograms {
                    put_string(&mut out, &h.name);
                    out.push(h.unit);
                    put_u64(&mut out, h.count);
                    put_u64(&mut out, h.sum);
                    put_u64(&mut out, h.min);
                    put_u64(&mut out, h.max);
                    out.push(u8::try_from(h.buckets.len()).expect("more than 64 buckets"));
                    for &(idx, n) in &h.buckets {
                        out.push(idx);
                        put_u64(&mut out, n);
                    }
                }
            }
        }
    }
    out
}

/// Decode a (fully reassembled) response payload. `codec` is the
/// connection's negotiated document codec; a [`STATUS_OK_PARTIAL`] status
/// is rejected here — chunk frames must be concatenated into the logical
/// payload first (the client does this in `recv`).
pub fn decode_response(payload: &[u8], codec: Codec) -> Result<ResponseFrame, DecodeError> {
    let mut r = Reader::new(payload);
    let status = r.u8()?;
    r.id = r.u64()?;
    let body = match status {
        STATUS_BUSY => ResponseBody::Busy,
        STATUS_GOAWAY => ResponseBody::GoAway,
        STATUS_ERROR => ResponseBody::Error(read_wire_error(&mut r)?),
        STATUS_OK_PARTIAL => {
            return Err(r.err("partial chunk frame passed to decode_response unassembled"))
        }
        STATUS_OK => {
            let op_raw = r.u8()?;
            let op = OpCode::from_u8(op_raw).ok_or_else(|| {
                DecodeError::new(r.id, ErrorCode::UnknownOp, format!("unknown op {op_raw}"))
            })?;
            match op {
                OpCode::Ping => ResponseBody::Pong,
                OpCode::Hello => ResponseBody::HelloOk { features: r.u32()? },
                OpCode::CheckConsistency => {
                    let n = r.u16()? as usize;
                    let mut flags = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        flags.push(match r.u8()? {
                            0 => false,
                            1 => true,
                            b => return Err(r.err(format!("bad boolean {b}"))),
                        });
                    }
                    ResponseBody::Consistency(flags)
                }
                OpCode::CanonicalSolution => {
                    let n = r.u16()? as usize;
                    let mut results = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        results.push(read_doc_result(&mut r, |r| read_doc(r, codec))?);
                    }
                    ResponseBody::Solutions(results)
                }
                OpCode::CertainAnswers => {
                    let n = r.u16()? as usize;
                    let mut results = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        results.push(read_doc_result(&mut r, |r| {
                            let count = r.u32()? as usize;
                            let mut tuples = Vec::with_capacity(count.min(4096));
                            for _ in 0..count {
                                let arity = r.u16()? as usize;
                                let mut tuple = Vec::with_capacity(arity.min(4096));
                                for _ in 0..arity {
                                    tuple.push(r.string()?);
                                }
                                tuples.push(tuple);
                            }
                            Ok(tuples)
                        })?);
                    }
                    ResponseBody::Answers(results)
                }
                OpCode::CertainAnswersBoolean => {
                    let n = r.u16()? as usize;
                    let mut results = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        results.push(read_doc_result(&mut r, |r| match r.u8()? {
                            0 => Ok(false),
                            1 => Ok(true),
                            b => Err(r.err(format!("bad boolean {b}"))),
                        })?);
                    }
                    ResponseBody::Booleans(results)
                }
                OpCode::PutDoc => ResponseBody::PutDocOk { version: r.u64()? },
                OpCode::GetDoc => ResponseBody::GetDocOk {
                    version: r.u64()?,
                    doc: read_doc(&mut r, codec)?,
                },
                OpCode::EditDoc => ResponseBody::EditDocOk { version: r.u64()? },
                OpCode::DeleteDoc => ResponseBody::DeleteDocOk,
                OpCode::PutSetting => ResponseBody::PutSettingOk {
                    content_hash: r.u64()?,
                    reused: read_bool(&mut r)?,
                },
                OpCode::ListSettings => {
                    let n = r.u16()? as usize;
                    let mut entries = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        entries.push(SettingEntry {
                            bind_id: r.u64()?,
                            content_hash: r.u64()?,
                            compiled: read_bool(&mut r)?,
                            cost: r.u64()?,
                        });
                    }
                    ResponseBody::SettingList { entries }
                }
                OpCode::EvictSetting => ResponseBody::EvictSettingOk {
                    dropped: read_bool(&mut r)?,
                },
                OpCode::Stats => {
                    let n = r.u16()? as usize;
                    let mut counters = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        counters.push((r.string()?, r.u64()?));
                    }
                    // A histogram section is present exactly when bytes
                    // remain (v2 servers omit it entirely on v4
                    // connections, so presence is unambiguous).
                    let mut histograms = Vec::new();
                    if r.has_remaining() {
                        let n = r.u16()? as usize;
                        histograms.reserve(n.min(4096));
                        for _ in 0..n {
                            let name = r.string()?;
                            let unit = r.u8()?;
                            let count = r.u64()?;
                            let sum = r.u64()?;
                            let min = r.u64()?;
                            let max = r.u64()?;
                            let nb = r.u8()? as usize;
                            let mut buckets = Vec::with_capacity(nb);
                            for _ in 0..nb {
                                buckets.push((r.u8()?, r.u64()?));
                            }
                            histograms.push(StatsHistogram {
                                name,
                                unit,
                                count,
                                sum,
                                min,
                                max,
                                buckets,
                            });
                        }
                    }
                    ResponseBody::StatsOk {
                        counters,
                        histograms,
                    }
                }
                // Stored query ops answer with the *base* op's response
                // (that is their byte-for-byte parity contract), so their
                // own codes never appear in a well-formed response.
                OpCode::CheckConsistencyStored
                | OpCode::CanonicalSolutionStored
                | OpCode::CertainAnswersStored
                | OpCode::CertainAnswersBooleanStored => {
                    return Err(r.err(format!(
                        "stored-query op {op_raw} in a response (the base op is echoed instead)"
                    )))
                }
            }
        }
        s => return Err(r.err(format!("unknown status {s}"))),
    };
    r.finish()?;
    Ok(ResponseFrame { id: r.id, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<RequestFrame> {
        vec![
            RequestFrame {
                id: 0,
                setting_id: 0,
                body: RequestBody::Ping,
            },
            RequestFrame {
                id: 11,
                setting_id: 0,
                body: RequestBody::Hello {
                    features: SUPPORTED_FEATURES,
                },
            },
            RequestFrame {
                id: u64::MAX,
                setting_id: 0,
                body: RequestBody::CheckConsistency { docs: vec![] },
            },
            RequestFrame {
                id: 7,
                setting_id: 0,
                body: RequestBody::CanonicalSolution {
                    docs: vec!["db".into(), "db[book(@title=\"x\")]".into()],
                },
            },
            RequestFrame {
                id: 8,
                setting_id: 0,
                body: RequestBody::CertainAnswers {
                    query: "($x) :- work(@title=$x)".into(),
                    docs: vec!["db".into()],
                },
            },
            RequestFrame {
                id: 9,
                setting_id: 0,
                body: RequestBody::CertainAnswersBoolean {
                    query: "() :- bib".into(),
                    docs: vec!["".into(), "⊥ weird \"doc\"".into()],
                },
            },
            RequestFrame {
                id: 10,
                setting_id: 0,
                body: RequestBody::PutDoc {
                    doc_id: 42,
                    doc: "db[book(@title=\"T\")]".into(),
                },
            },
            RequestFrame {
                id: 11,
                setting_id: 0,
                body: RequestBody::GetDoc { doc_id: u64::MAX },
            },
            RequestFrame {
                id: 12,
                setting_id: 0,
                body: RequestBody::EditDoc {
                    doc_id: 42,
                    base_version: 7,
                    edits: vec![0, 1, 0xde, 0xad],
                },
            },
            RequestFrame {
                id: 13,
                setting_id: 0,
                body: RequestBody::DeleteDoc { doc_id: 0 },
            },
            RequestFrame {
                id: 14,
                setting_id: 0,
                body: RequestBody::CheckConsistencyStored { doc_id: 3 },
            },
            RequestFrame {
                id: 15,
                setting_id: 0,
                body: RequestBody::CanonicalSolutionStored { doc_id: 3 },
            },
            RequestFrame {
                id: 16,
                setting_id: 0,
                body: RequestBody::CertainAnswersStored {
                    query: "($x) :- work(@title=$x)".into(),
                    doc_id: 3,
                },
            },
            RequestFrame {
                id: 17,
                setting_id: 0,
                body: RequestBody::CertainAnswersBooleanStored {
                    query: "() :- bib".into(),
                    doc_id: 9,
                },
            },
            RequestFrame {
                id: 18,
                setting_id: 0,
                body: RequestBody::PutSetting {
                    bind_id: 3,
                    text: "source { db -> (book)* } target { lib -> (work)* }\n".into(),
                },
            },
            RequestFrame {
                id: 19,
                setting_id: 0,
                body: RequestBody::ListSettings,
            },
            RequestFrame {
                id: 20,
                setting_id: 0,
                body: RequestBody::EvictSetting { bind_id: u64::MAX },
            },
            RequestFrame {
                id: 21,
                setting_id: 0,
                body: RequestBody::Stats,
            },
        ]
    }

    fn sample_responses() -> Vec<ResponseFrame> {
        let err = WireError::new(ErrorCode::NoRepair, "the children cannot be repaired");
        vec![
            ResponseFrame {
                id: 1,
                body: ResponseBody::Pong,
            },
            ResponseFrame {
                id: 2,
                body: ResponseBody::Busy,
            },
            ResponseFrame {
                id: 12,
                body: ResponseBody::HelloOk {
                    features: FEATURE_BINARY_DOCS,
                },
            },
            ResponseFrame {
                id: 3,
                body: ResponseBody::Error(WireError::new(ErrorCode::MalformedFrame, "bad")),
            },
            ResponseFrame {
                id: 4,
                body: ResponseBody::Consistency(vec![true, false, true]),
            },
            ResponseFrame {
                id: 5,
                body: ResponseBody::Solutions(vec![
                    Ok("bib[writer(@name=\"P\")]".into()),
                    Err(err.clone()),
                ]),
            },
            ResponseFrame {
                id: 6,
                body: ResponseBody::Answers(vec![
                    Ok(vec![vec!["a".into(), "b".into()], vec![]]),
                    Ok(vec![]),
                    Err(err),
                ]),
            },
            ResponseFrame {
                id: 7,
                body: ResponseBody::Booleans(vec![
                    Ok(true),
                    Ok(false),
                    Err(WireError::new(ErrorCode::AttributeClash, "clash")),
                ]),
            },
            ResponseFrame {
                id: 8,
                body: ResponseBody::PutDocOk { version: 1 },
            },
            ResponseFrame {
                id: 9,
                body: ResponseBody::GetDocOk {
                    version: 3,
                    doc: "db[book(@title=\"T\")]".into(),
                },
            },
            ResponseFrame {
                id: 10,
                body: ResponseBody::EditDocOk { version: u64::MAX },
            },
            ResponseFrame {
                id: 11,
                body: ResponseBody::DeleteDocOk,
            },
            ResponseFrame {
                id: 12,
                body: ResponseBody::Error(WireError::new(
                    ErrorCode::VersionConflict,
                    "document 42 is at version 9, not 7",
                )),
            },
            ResponseFrame {
                id: 13,
                body: ResponseBody::PutSettingOk {
                    content_hash: 0xdead_beef_cafe_f00d,
                    reused: true,
                },
            },
            ResponseFrame {
                id: 14,
                body: ResponseBody::SettingList {
                    entries: vec![
                        SettingEntry {
                            bind_id: 0,
                            content_hash: 17,
                            compiled: true,
                            cost: 321,
                        },
                        SettingEntry {
                            bind_id: 9,
                            content_hash: u64::MAX,
                            compiled: false,
                            cost: 0,
                        },
                    ],
                },
            },
            ResponseFrame {
                id: 15,
                body: ResponseBody::SettingList { entries: vec![] },
            },
            ResponseFrame {
                id: 16,
                body: ResponseBody::EvictSettingOk { dropped: false },
            },
            ResponseFrame {
                id: 17,
                body: ResponseBody::GoAway,
            },
            ResponseFrame {
                id: 18,
                body: ResponseBody::StatsOk {
                    counters: vec![
                        ("server.uptime_secs".into(), 12),
                        ("store.degraded".into(), 0),
                        ("store.wal_rollbacks".into(), u64::MAX),
                    ],
                    histograms: vec![],
                },
            },
            ResponseFrame {
                id: 19,
                body: ResponseBody::StatsOk {
                    counters: vec![],
                    histograms: vec![],
                },
            },
            ResponseFrame {
                id: 1918,
                body: ResponseBody::StatsOk {
                    counters: vec![("server.uptime_secs".into(), 1)],
                    histograms: vec![
                        StatsHistogram {
                            name: "req.solution.s0.total".into(),
                            unit: 0,
                            count: 3,
                            sum: 3000,
                            min: 900,
                            max: 1200,
                            buckets: vec![(10, 2), (11, 1)],
                        },
                        StatsHistogram {
                            name: "store.fsync".into(),
                            unit: 0,
                            count: 0,
                            sum: 0,
                            min: 0,
                            max: 0,
                            buckets: vec![],
                        },
                    ],
                },
            },
            ResponseFrame {
                id: 20,
                body: ResponseBody::Error(WireError::new(
                    ErrorCode::StoreDegraded,
                    "the store is degraded: WAL fsync: injected fault",
                )),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let bytes = encode_request(&req, false);
            let back = decode_request(&bytes, MAX_DOCS_PER_REQUEST, Codec::Text, false).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes, Codec::Text).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn binary_docs_round_trip_under_the_binary_codec() {
        use xdx_xmltree::XmlTree;
        let doc = WireDoc::from_tree(&XmlTree::new("db"), Codec::Binary);
        let req = RequestFrame {
            id: 3,
            setting_id: 0,
            body: RequestBody::CanonicalSolution {
                docs: vec![doc.clone(), WireDoc::Binary(vec![0xde, 0xad])],
            },
        };
        let bytes = encode_request(&req, false);
        let back = decode_request(&bytes, MAX_DOCS_PER_REQUEST, Codec::Binary, false).unwrap();
        assert_eq!(req, back);
        // The valid frame parses; the garbage one reports BinaryDoc.
        assert!(doc.to_tree().is_ok());
        let err = WireDoc::Binary(vec![0xde, 0xad]).to_tree().unwrap_err();
        assert_eq!(err.code, ErrorCode::BinaryDoc);

        let resp = ResponseFrame {
            id: 4,
            body: ResponseBody::Solutions(vec![Ok(doc)]),
        };
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes, Codec::Binary).unwrap(), resp);
    }

    #[test]
    fn codec_mismatch_is_detected_not_panicked() {
        // A binary frame decoded as text must fail UTF-8 or tree parsing,
        // never panic: version byte 1 is not valid tree text anyway.
        use xdx_xmltree::XmlTree;
        let doc = WireDoc::from_tree(&XmlTree::new("db"), Codec::Binary);
        let req = RequestFrame {
            id: 5,
            setting_id: 0,
            body: RequestBody::CheckConsistency { docs: vec![doc] },
        };
        let bytes = encode_request(&req, false);
        match decode_request(&bytes, MAX_DOCS_PER_REQUEST, Codec::Text, false) {
            Ok(back) => {
                // Framing is codec-independent, so it may decode as a
                // text doc — which must then fail to parse as a tree.
                for d in match &back.body {
                    RequestBody::CheckConsistency { docs } => docs,
                    _ => panic!("op preserved"),
                } {
                    assert!(d.to_tree().is_err());
                }
            }
            Err(e) => assert_eq!(e.error.code, ErrorCode::MalformedFrame),
        }
    }

    #[test]
    fn partial_status_requires_reassembly() {
        let mut bytes = vec![STATUS_OK_PARTIAL];
        bytes.extend_from_slice(&9u64.to_be_bytes());
        bytes.extend_from_slice(b"chunk");
        let err = decode_response(&bytes, Codec::Text).unwrap_err();
        assert_eq!(err.id, 9);
        assert!(err.error.message.contains("unassembled"));
    }

    #[test]
    fn truncations_of_valid_payloads_never_panic() {
        for codec in [Codec::Text, Codec::Binary] {
            for req in sample_requests() {
                let bytes = encode_request(&req, false);
                for cut in 0..bytes.len() {
                    let _ = decode_request(&bytes[..cut], MAX_DOCS_PER_REQUEST, codec, false);
                }
            }
            for resp in sample_responses() {
                let bytes = encode_response(&resp);
                for cut in 0..bytes.len() {
                    let _ = decode_response(&bytes[..cut], codec);
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for req in sample_requests() {
            let mut bytes = encode_request(&req, false);
            bytes.push(0);
            let err = decode_request(&bytes, MAX_DOCS_PER_REQUEST, Codec::Text, false).unwrap_err();
            assert_eq!(err.error.code, ErrorCode::MalformedFrame);
            assert_eq!(err.id, req.id, "the id must still be echoed");
        }
    }

    #[test]
    fn encode_request_into_appends_after_reserved_framing_bytes() {
        let req = RequestFrame {
            id: 1,
            setting_id: 0,
            body: RequestBody::Ping,
        };
        let mut buf = vec![0u8; 4];
        encode_request_into(&req, false, &mut buf);
        assert_eq!(&buf[4..], encode_request(&req, false).as_slice());
    }

    #[test]
    fn unknown_ops_and_doc_limits_carry_codes() {
        let mut bytes = vec![99u8];
        bytes.extend_from_slice(&42u64.to_be_bytes());
        let err = decode_request(&bytes, MAX_DOCS_PER_REQUEST, Codec::Text, false).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::UnknownOp);
        assert_eq!(err.id, 42);

        let req = RequestFrame {
            id: 5,
            setting_id: 0,
            body: RequestBody::CheckConsistency {
                docs: vec![WireDoc::from("db"); 10],
            },
        };
        let bytes = encode_request(&req, false);
        let err = decode_request(&bytes, 4, Codec::Text, false).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::TooManyDocs);
        assert_eq!(err.id, 5);
    }

    #[test]
    fn hostile_length_fields_do_not_overallocate() {
        // A string length of u32::MAX with 3 bytes of data must fail
        // cleanly (allocation is bounded by the actual payload).
        for codec in [Codec::Text, Codec::Binary] {
            let mut bytes = vec![OpCode::CertainAnswers as u8];
            bytes.extend_from_slice(&1u64.to_be_bytes());
            bytes.extend_from_slice(&u32::MAX.to_be_bytes());
            bytes.extend_from_slice(b"abc");
            let err = decode_request(&bytes, MAX_DOCS_PER_REQUEST, codec, false).unwrap_err();
            assert_eq!(err.error.code, ErrorCode::MalformedFrame);
        }
    }

    #[test]
    fn every_solution_error_variant_has_a_distinct_code() {
        use xdx_xmltree::ElementType;
        let variants = vec![
            SolutionError::NotFullySpecified { std_index: 0 },
            SolutionError::DisallowedAttribute {
                element: ElementType::new("e"),
                attr: "@a".into(),
            },
            SolutionError::AttributeClash {
                element: ElementType::new("e"),
                attr: "@a".into(),
                values: ("x".into(), "y".into()),
            },
            SolutionError::NoRepair {
                element: ElementType::new("e"),
            },
            SolutionError::NoMaximumRepair {
                element: ElementType::new("e"),
            },
            SolutionError::UnknownTargetElement {
                element: ElementType::new("e"),
            },
            SolutionError::WildcardInTarget { std_index: 1 },
            SolutionError::ChaseBudgetExceeded { steps: 3 },
            SolutionError::RepairBudgetExceeded {
                message: "m".into(),
            },
        ];
        let mut codes: Vec<u16> = variants
            .iter()
            .map(|e| WireError::of_solution_error(e).code as u16)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), variants.len());
        // And every code survives the wire.
        for e in &variants {
            let w = WireError::of_solution_error(e);
            assert_eq!(ErrorCode::from_u16(w.code as u16), Some(w.code));
            assert_eq!(w.message, e.to_string());
        }
    }

    #[test]
    fn settings_framing_round_trips_every_op() {
        for mut req in sample_requests() {
            req.setting_id = 0x0102_0304_0506_0708;
            let bytes = encode_request(&req, true);
            let legacy = encode_request(&req, false);
            // The setting id is exactly one u64 after the request id; the
            // rest of the payload is byte-identical to the legacy layout.
            assert_eq!(bytes.len(), legacy.len() + 8);
            assert_eq!(bytes[..9], legacy[..9]);
            assert_eq!(bytes[9..17], 0x0102_0304_0506_0708u64.to_be_bytes());
            assert_eq!(bytes[17..], legacy[9..]);
            let back = decode_request(&bytes, MAX_DOCS_PER_REQUEST, Codec::Text, true).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn legacy_framing_ignores_the_setting_field() {
        // v1/v2 connections never see a setting id: the field is not
        // encoded, and decoding always yields the default setting.
        let mut req = RequestFrame::new(4, RequestBody::Ping);
        let v2 = encode_request(&req, false);
        req.setting_id = 99;
        assert_eq!(encode_request(&req, false), v2);
        let back = decode_request(&v2, MAX_DOCS_PER_REQUEST, Codec::Text, false).unwrap();
        assert_eq!(back.setting_id, 0);
    }

    #[test]
    fn settings_truncations_never_panic() {
        for codec in [Codec::Text, Codec::Binary] {
            for mut req in sample_requests() {
                req.setting_id = u64::MAX;
                let bytes = encode_request(&req, true);
                for cut in 0..bytes.len() {
                    let _ = decode_request(&bytes[..cut], MAX_DOCS_PER_REQUEST, codec, true);
                }
                let mut bytes = bytes;
                bytes.push(0);
                let err = decode_request(&bytes, MAX_DOCS_PER_REQUEST, codec, true).unwrap_err();
                assert_eq!(err.error.code, ErrorCode::MalformedFrame);
                assert_eq!(err.id, req.id);
            }
        }
    }

    #[test]
    fn setting_responses_reject_bad_booleans() {
        let resp = ResponseFrame {
            id: 3,
            body: ResponseBody::PutSettingOk {
                content_hash: 1,
                reused: false,
            },
        };
        let mut bytes = encode_response(&resp);
        *bytes.last_mut().unwrap() = 2;
        let err = decode_response(&bytes, Codec::Text).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::MalformedFrame);
        assert!(err.error.message.contains("bad boolean"));
    }

    #[test]
    fn new_error_codes_survive_the_wire() {
        for code in [
            ErrorCode::UnknownSetting,
            ErrorCode::SettingParse,
            ErrorCode::SettingReject,
            ErrorCode::SettingLimit,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        const { assert!(SUPPORTED_FEATURES & FEATURE_SETTINGS != 0) };
    }
}
