//! The multi-tenant setting registry (protocol v3).
//!
//! A **binding** maps a client-visible setting id to uploaded setting
//! *text* (the `xdx_core::settext` syntax). Compiled artifacts live in a
//! separate **content-addressed cache**: one compiled engine per distinct
//! canonical text, keyed by its FNV-1a hash, shared by every binding with
//! identical text — re-uploading the same setting under ten ids compiles
//! once.
//!
//! The cache is a **cost-aware LRU**: each entry's cost is its canonical
//! text's byte length (a stable proxy for compiled size that both sides of
//! the wire can compute), and the cache evicts least-recently-used entries
//! whenever the total cost exceeds [`Registry`]'s budget. Eviction — LRU
//! or explicit ([`Registry::evict`]) — drops only the *artifact*: the
//! binding and its text survive, and the next request against the binding
//! recompiles from the retained text. Stored documents are scoped by
//! setting id in `xdx-store`, not by compiled artifact, so eviction never
//! touches them.
//!
//! Binding id 0 is the setting the server was started with. It is pinned:
//! its artifact is never evicted and `put`/`evict` of id 0 are rejected,
//! so v1/v2 connections (which always address setting 0) can never lose
//! their engine or have its semantics swapped under them.
//!
//! Workers hold the registry behind one mutex, but **never compile under
//! it**: a resolve miss clones the text out, compiles unlocked, and
//! re-locks to insert — a racing identical compile loses and adopts the
//! winner's artifact.

use crate::wire::{self, SettingEntry, WireError};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use xdx_core::engine::BatchEngine;
use xdx_core::settext::parse_setting;

/// The pinned binding id of the setting the server was started with.
pub(crate) const DEFAULT_BINDING: u64 = 0;

/// FNV-1a over the canonical setting text — the content address of a
/// compiled artifact. Stable and dependency-free; collisions would only
/// alias two settings' *cache entries*, and at 64 bits are not a practical
/// concern for the handful of settings a server hosts.
fn content_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in text.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One setting id → text binding.
struct Binding {
    hash: u64,
    /// Canonical text (`settext::setting_to_text` of the parsed upload),
    /// retained so an evicted artifact can be recompiled on demand.
    text: Arc<str>,
}

/// One resident compiled artifact, shared by content hash.
struct Compiled {
    engine: Arc<BatchEngine<'static>>,
    cost: u64,
    last_used: u64,
}

struct Inner {
    bindings: BTreeMap<u64, Binding>,
    compiled: HashMap<u64, Compiled>,
    total_cost: u64,
    /// LRU clock: bumped on every hit, stamped into the touched entry.
    tick: u64,
}

/// The server's setting registry. See the module docs for the model.
pub(crate) struct Registry {
    inner: Mutex<Inner>,
    /// Worker parallelism applied to every compiled engine (matches the
    /// default engine, so per-request fan-out behaves identically across
    /// settings).
    parallelism: usize,
    max_settings: usize,
    max_compiled_cost: u64,
    /// Resolves answered by a resident artifact (`Stats` wire op).
    artifact_hits: AtomicU64,
    /// Resolves that had to recompile from retained text.
    artifact_misses: AtomicU64,
}

/// What [`Registry::put`] tells the caller beyond the wire response: a
/// rebind that *changed* the setting's semantics must invalidate the
/// setting's derived store state (cached answers, validation baselines).
#[derive(Debug)]
pub(crate) struct PutOutcome {
    pub content_hash: u64,
    pub reused: bool,
    /// The binding existed before and now names different text.
    pub rebound: bool,
}

impl Registry {
    /// Build the registry around the default setting's already-compiled
    /// engine. `default_text` must be the canonical text of that setting.
    pub(crate) fn new(
        default_engine: BatchEngine<'static>,
        default_text: String,
        parallelism: usize,
        max_settings: usize,
        max_compiled_cost: u64,
    ) -> Registry {
        let hash = content_hash(&default_text);
        let cost = default_text.len() as u64;
        let mut bindings = BTreeMap::new();
        bindings.insert(
            DEFAULT_BINDING,
            Binding {
                hash,
                text: Arc::from(default_text.as_str()),
            },
        );
        let mut compiled = HashMap::new();
        compiled.insert(
            hash,
            Compiled {
                engine: Arc::new(default_engine),
                cost,
                last_used: 0,
            },
        );
        Registry {
            inner: Mutex::new(Inner {
                bindings,
                compiled,
                total_cost: cost,
                tick: 0,
            }),
            parallelism,
            max_settings,
            max_compiled_cost,
            artifact_hits: AtomicU64::new(0),
            artifact_misses: AtomicU64::new(0),
        }
    }

    /// `(hits, misses)` of [`Registry::resolve`] against the compiled
    /// cache since startup.
    pub(crate) fn artifact_counters(&self) -> (u64, u64) {
        (
            self.artifact_hits.load(Ordering::Relaxed),
            self.artifact_misses.load(Ordering::Relaxed),
        )
    }

    /// Parse, canonicalize, compile (or reuse) and bind `text` to
    /// `bind_id`.
    pub(crate) fn put(&self, bind_id: u64, text: &str) -> Result<PutOutcome, WireError> {
        if bind_id == DEFAULT_BINDING {
            return Err(WireError::new(
                wire::ErrorCode::UnknownSetting,
                "setting 0 is the server's default setting and cannot be rebound",
            ));
        }
        let setting = parse_setting(text)
            .map_err(|e| WireError::new(wire::ErrorCode::SettingParse, e.to_string()))?;
        // Canonical text is what gets hashed and retained, so uploads that
        // differ only in whitespace or ordering of equivalent clauses
        // share one artifact.
        let canonical = xdx_core::settext::setting_to_text(&setting);
        let hash = content_hash(&canonical);
        let cost = canonical.len() as u64;
        if cost > self.max_compiled_cost {
            return Err(WireError::new(
                wire::ErrorCode::SettingLimit,
                format!(
                    "setting cost {cost} exceeds the compiled-cost budget {}",
                    self.max_compiled_cost
                ),
            ));
        }
        // Fast path under the lock: bind to an already-resident artifact.
        {
            let mut inner = self.inner.lock().expect("registry poisoned");
            self.check_binding_count(&inner, bind_id)?;
            if inner.compiled.contains_key(&hash) {
                inner.tick += 1;
                let tick = inner.tick;
                inner
                    .compiled
                    .get_mut(&hash)
                    .expect("checked resident")
                    .last_used = tick;
                let rebound = Self::bind(&mut inner, bind_id, hash, &canonical);
                return Ok(PutOutcome {
                    content_hash: hash,
                    reused: true,
                    rebound,
                });
            }
        }
        // Miss: compile unlocked, then insert (a racing identical upload
        // may have beaten us — its artifact wins, ours is dropped).
        let engine = self.compile(setting);
        let mut inner = self.inner.lock().expect("registry poisoned");
        self.check_binding_count(&inner, bind_id)?;
        let reused = inner.compiled.contains_key(&hash);
        if !reused {
            self.insert_compiled(&mut inner, hash, engine, cost);
        }
        let rebound = Self::bind(&mut inner, bind_id, hash, &canonical);
        Ok(PutOutcome {
            content_hash: hash,
            reused,
            rebound,
        })
    }

    /// The engine for `setting_id`, recompiling from retained text if the
    /// artifact was evicted.
    pub(crate) fn resolve(&self, setting_id: u64) -> Result<Arc<BatchEngine<'static>>, WireError> {
        let (hash, text) = {
            let mut inner = self.inner.lock().expect("registry poisoned");
            let binding = inner.bindings.get(&setting_id).ok_or_else(|| {
                WireError::new(
                    wire::ErrorCode::UnknownSetting,
                    format!("no setting is bound to id {setting_id}"),
                )
            })?;
            let (hash, text) = (binding.hash, Arc::clone(&binding.text));
            if let Some(entry) = inner.compiled.get_mut(&hash) {
                let engine = Arc::clone(&entry.engine);
                inner.tick += 1;
                let tick = inner.tick;
                inner
                    .compiled
                    .get_mut(&hash)
                    .expect("checked resident")
                    .last_used = tick;
                self.artifact_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(engine);
            }
            (hash, text)
        };
        self.artifact_misses.fetch_add(1, Ordering::Relaxed);
        // Cold binding: recompile from the retained canonical text. It
        // parsed when it was uploaded, so a failure here is a bug, but
        // answer with a structured error rather than poisoning the worker.
        let setting = parse_setting(&text).map_err(|e| {
            WireError::new(
                wire::ErrorCode::SettingReject,
                format!("retained text for setting {setting_id} no longer compiles: {e}"),
            )
        })?;
        let engine = self.compile(setting);
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(entry) = inner.compiled.get(&hash) {
            return Ok(Arc::clone(&entry.engine)); // racing resolve won
        }
        let engine = Arc::new(engine);
        let handle = Arc::clone(&engine);
        self.insert_compiled_arc(&mut inner, hash, engine, text.len() as u64);
        Ok(handle)
    }

    /// One row per binding, ascending by binding id.
    pub(crate) fn list(&self) -> Vec<SettingEntry> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .bindings
            .iter()
            .map(|(&bind_id, b)| SettingEntry {
                bind_id,
                content_hash: b.hash,
                compiled: inner.compiled.contains_key(&b.hash),
                cost: b.text.len() as u64,
            })
            .collect()
    }

    /// Drop `bind_id`'s compiled artifact (text, binding and stored
    /// documents survive). Returns whether an artifact was resident.
    pub(crate) fn evict(&self, bind_id: u64) -> Result<bool, WireError> {
        if bind_id == DEFAULT_BINDING {
            return Err(WireError::new(
                wire::ErrorCode::UnknownSetting,
                "setting 0 is the server's default setting and stays resident",
            ));
        }
        let mut inner = self.inner.lock().expect("registry poisoned");
        let hash = inner
            .bindings
            .get(&bind_id)
            .map(|b| b.hash)
            .ok_or_else(|| {
                WireError::new(
                    wire::ErrorCode::UnknownSetting,
                    format!("no setting is bound to id {bind_id}"),
                )
            })?;
        if hash == Self::pinned_hash(&inner) {
            // The binding shares the default setting's text; its artifact
            // is pinned, so there is nothing to drop.
            return Ok(false);
        }
        Ok(Self::remove_compiled(&mut inner, hash))
    }

    fn compile(&self, setting: xdx_core::setting::DataExchangeSetting) -> BatchEngine<'static> {
        BatchEngine::new_owned(Arc::new(setting)).parallelism(self.parallelism)
    }

    /// Reject a *new* binding beyond the binding cap (rebinding an
    /// existing id is always admitted).
    fn check_binding_count(&self, inner: &Inner, bind_id: u64) -> Result<(), WireError> {
        if !inner.bindings.contains_key(&bind_id) && inner.bindings.len() >= self.max_settings {
            return Err(WireError::new(
                wire::ErrorCode::SettingLimit,
                format!("the server caps bindings at {}", self.max_settings),
            ));
        }
        Ok(())
    }

    /// (Re)bind `bind_id`; returns whether an existing binding's hash
    /// changed.
    fn bind(inner: &mut Inner, bind_id: u64, hash: u64, canonical: &str) -> bool {
        let rebound = inner
            .bindings
            .get(&bind_id)
            .map(|b| b.hash != hash)
            .unwrap_or(false);
        inner.bindings.insert(
            bind_id,
            Binding {
                hash,
                text: Arc::from(canonical),
            },
        );
        rebound
    }

    fn insert_compiled(
        &self,
        inner: &mut Inner,
        hash: u64,
        engine: BatchEngine<'static>,
        cost: u64,
    ) {
        self.insert_compiled_arc(inner, hash, Arc::new(engine), cost);
    }

    fn insert_compiled_arc(
        &self,
        inner: &mut Inner,
        hash: u64,
        engine: Arc<BatchEngine<'static>>,
        cost: u64,
    ) {
        inner.tick += 1;
        let last_used = inner.tick;
        inner.compiled.insert(
            hash,
            Compiled {
                engine,
                cost,
                last_used,
            },
        );
        inner.total_cost += cost;
        self.evict_lru(inner, hash);
    }

    /// Evict least-recently-used artifacts until the cost budget holds.
    /// The pinned default artifact and `keep` (the entry just inserted)
    /// are never victims, so the budget can be transiently exceeded by one
    /// entry rather than ever evicting what the caller is about to use.
    fn evict_lru(&self, inner: &mut Inner, keep: u64) {
        let pinned = Self::pinned_hash(inner);
        while inner.total_cost > self.max_compiled_cost {
            let victim = inner
                .compiled
                .iter()
                .filter(|(&h, _)| h != pinned && h != keep)
                .min_by_key(|(_, c)| c.last_used)
                .map(|(&h, _)| h);
            match victim {
                Some(h) => {
                    Self::remove_compiled(inner, h);
                }
                None => return, // only pinned + in-use entries remain
            }
        }
    }

    fn remove_compiled(inner: &mut Inner, hash: u64) -> bool {
        match inner.compiled.remove(&hash) {
            Some(entry) => {
                inner.total_cost -= entry.cost;
                true
            }
            None => false,
        }
    }

    fn pinned_hash(inner: &Inner) -> u64 {
        inner
            .bindings
            .get(&DEFAULT_BINDING)
            .map(|b| b.hash)
            .expect("default binding is constructed with the registry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_core::settext::setting_to_text;

    fn text(root: &str) -> String {
        format!(
            "source {{ root {root}; rule {root} = a*; rule a = eps; }} \
             target {{ root t; rule t = b*; rule b = eps; }} \
             std t[b] :- {root}[a];"
        )
    }

    fn registry(max_settings: usize, max_cost: u64) -> Registry {
        let setting = parse_setting(&text("d")).expect("default parses");
        let canonical = setting_to_text(&setting);
        let engine = BatchEngine::new_owned(Arc::new(setting));
        Registry::new(engine, canonical, 1, max_settings, max_cost)
    }

    #[test]
    fn identical_text_reuses_the_compiled_artifact() {
        let r = registry(8, 1 << 20);
        let a = r.put(1, &text("r")).expect("first upload");
        assert!(!a.reused);
        assert!(!a.rebound);
        let b = r.put(2, &text("r")).expect("second upload, same text");
        assert!(b.reused, "identical text must not recompile");
        assert_eq!(a.content_hash, b.content_hash);
        // Whitespace-only differences canonicalize away.
        let c = r.put(3, &format!("  {}  ", text("r"))).expect("padded");
        assert_eq!(c.content_hash, a.content_hash);
        assert!(c.reused);
    }

    #[test]
    fn rebinding_reports_a_semantic_change_only_on_new_text() {
        let r = registry(8, 1 << 20);
        r.put(1, &text("r")).expect("bind");
        let same = r.put(1, &text("r")).expect("rebind identical");
        assert!(!same.rebound);
        let changed = r.put(1, &text("q")).expect("rebind different");
        assert!(changed.rebound);
    }

    #[test]
    fn eviction_keeps_the_binding_and_recompiles_on_demand() {
        let r = registry(8, 1 << 20);
        r.put(1, &text("r")).expect("bind");
        assert!(r.evict(1).expect("evict"));
        assert!(!r.evict(1).expect("re-evict"), "already cold");
        let rows = r.list();
        let row = rows.iter().find(|e| e.bind_id == 1).expect("still listed");
        assert!(!row.compiled);
        // Resolving a cold binding recompiles from the retained text.
        let engine = r.resolve(1).expect("resolve recompiles");
        assert_eq!(engine.compiled().setting().stds.len(), 1);
        assert!(
            r.list()
                .iter()
                .find(|e| e.bind_id == 1)
                .expect("row")
                .compiled
        );
    }

    #[test]
    fn the_default_binding_is_pinned() {
        let r = registry(8, 1 << 20);
        assert!(r.put(0, &text("r")).is_err());
        assert!(r.evict(0).is_err());
        // A non-default binding with the default's text has nothing of its
        // own to evict.
        let default_text = r.list()[0];
        assert_eq!(default_text.bind_id, 0);
        assert!(default_text.compiled);
    }

    #[test]
    fn the_cost_budget_evicts_least_recently_used_artifacts() {
        // Costs are *canonical* text bytes; all four settings here differ
        // only in a one-char root name, so they cost the same.
        let one = setting_to_text(&parse_setting(&text("r")).expect("parses")).len() as u64;
        // Room for the pinned default plus two uploads.
        let r = registry(16, 3 * one);
        r.put(1, &text("r")).expect("bind 1");
        r.put(2, &text("q")).expect("bind 2");
        // Touch 1 so 2 is the LRU victim when 3 arrives.
        r.resolve(1).expect("warm 1");
        r.put(3, &text("s")).expect("bind 3");
        let compiled: Vec<(u64, bool)> = r.list().iter().map(|e| (e.bind_id, e.compiled)).collect();
        assert_eq!(
            compiled,
            vec![(0, true), (1, true), (2, false), (3, true)],
            "the least-recently-used unpinned artifact is evicted"
        );
        // The evicted binding still answers — by recompiling.
        assert!(r.resolve(2).is_ok());
    }

    #[test]
    fn limits_carry_structured_codes() {
        // Binding cap: the default occupies the only slot.
        let r = registry(1, 1 << 20);
        let cap = r.put(1, &text("r")).unwrap_err();
        assert_eq!(cap.code, wire::ErrorCode::SettingLimit);

        // Cost cap: one setting's cost alone exceeds the budget.
        let r = registry(8, 8);
        let cost = r.put(1, &text("r")).unwrap_err();
        assert_eq!(cost.code, wire::ErrorCode::SettingLimit);

        let r = registry(8, 1 << 20);
        let parse = r.put(1, "not a setting").unwrap_err();
        assert_eq!(parse.code, wire::ErrorCode::SettingParse);
        let unknown = r.resolve(77).unwrap_err();
        assert_eq!(unknown.code, wire::ErrorCode::UnknownSetting);
    }
}
