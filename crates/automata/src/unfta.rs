//! Unranked nondeterministic finite tree automata (Appendix A).

use std::collections::{BTreeMap, BTreeSet};
use xdx_relang::{Nfa, Regex};
use xdx_xmltree::{Dtd, ElementType, NodeId, XmlTree};

/// An unranked nondeterministic finite tree automaton.
///
/// States are `0..num_states`. For every (state, label) pair the transition
/// relation gives a regular language over states (represented by its regular
/// expression and a pre-built NFA): a node labelled `a` can be assigned state
/// `q` iff the word of states assigned to its children (left to right)
/// belongs to `δ(q, a)`.
#[derive(Debug, Clone)]
pub struct Unfta {
    num_states: usize,
    accepting: BTreeSet<usize>,
    /// `(state, label) → horizontal language`.
    transitions: BTreeMap<(usize, ElementType), Regex<usize>>,
    nfas: BTreeMap<(usize, ElementType), Nfa<usize>>,
}

impl Unfta {
    /// Create an automaton with `num_states` states and the given accepting
    /// set; transitions are added with [`Unfta::add_transition`].
    pub fn new(num_states: usize, accepting: impl IntoIterator<Item = usize>) -> Self {
        Unfta {
            num_states,
            accepting: accepting.into_iter().collect(),
            transitions: BTreeMap::new(),
            nfas: BTreeMap::new(),
        }
    }

    /// Add (or replace) the transition `δ(state, label) = horizontal`.
    pub fn add_transition(
        &mut self,
        state: usize,
        label: impl Into<ElementType>,
        horizontal: Regex<usize>,
    ) {
        let label = label.into();
        self.nfas
            .insert((state, label.clone()), Nfa::from_regex(&horizontal));
        self.transitions.insert((state, label), horizontal);
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The accepting states.
    pub fn accepting(&self) -> &BTreeSet<usize> {
        &self.accepting
    }

    /// Embed a DTD as a tree automaton: one state per element type, the
    /// horizontal language of `(qℓ, ℓ)` is `P(ℓ)` read over states, all other
    /// transitions empty, the accepting state is the root type.
    ///
    /// Returns the automaton together with the element-type-to-state map.
    pub fn from_dtd(dtd: &Dtd) -> (Unfta, BTreeMap<ElementType, usize>) {
        let elements: Vec<&ElementType> = dtd.element_types().collect();
        let index: BTreeMap<ElementType, usize> = elements
            .iter()
            .enumerate()
            .map(|(i, &e)| (e.clone(), i))
            .collect();
        let root_state = index[dtd.root()];
        let mut a = Unfta::new(elements.len(), [root_state]);
        for &l in &elements {
            let rule = dtd.rule(l);
            let horizontal = rule.map(&mut |sym: &ElementType| index[sym]);
            a.add_transition(index[l], l.clone(), horizontal);
        }
        (a, index)
    }

    /// The set of states assignable to `node` by some run on the subtree
    /// rooted at `node` (ignoring attributes; tree automata in the paper run
    /// on the element-type skeleton).
    pub fn possible_states(&self, tree: &XmlTree, node: NodeId) -> BTreeSet<usize> {
        let child_sets: Vec<BTreeSet<usize>> = tree
            .children(node)
            .iter()
            .map(|&c| self.possible_states(tree, c))
            .collect();
        let label = tree.label(node);
        let mut out = BTreeSet::new();
        for q in 0..self.num_states {
            let Some(nfa) = self.nfas.get(&(q, label.clone())) else {
                continue;
            };
            if horizontal_accepts_some_choice(nfa, &child_sets) {
                out.insert(q);
            }
        }
        out
    }

    /// Does the automaton accept the tree?
    pub fn accepts(&self, tree: &XmlTree) -> bool {
        self.possible_states(tree, tree.root())
            .iter()
            .any(|q| self.accepting.contains(q))
    }

    /// The *inhabited* states: states `q` such that some finite tree admits a
    /// run assigning `q` to its root.
    pub fn inhabited_states(&self) -> BTreeSet<usize> {
        let mut inhabited: BTreeSet<usize> = BTreeSet::new();
        loop {
            let mut changed = false;
            for ((q, _label), regex) in &self.transitions {
                if inhabited.contains(q) {
                    continue;
                }
                // Is there a word of the horizontal language using only
                // inhabited states?
                let dead: BTreeSet<usize> = regex
                    .alphabet()
                    .into_iter()
                    .filter(|s| !inhabited.contains(s))
                    .collect();
                if !regex.eliminate_symbols(&dead).is_empty_language() {
                    inhabited.insert(*q);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        inhabited
    }

    /// Is the language of the automaton empty?
    pub fn is_empty_language(&self) -> bool {
        let inhabited = self.inhabited_states();
        !self.accepting.iter().any(|q| inhabited.contains(q))
    }
}

/// Is there a choice of one state from each child set forming a word accepted
/// by the horizontal NFA?
fn horizontal_accepts_some_choice(nfa: &Nfa<usize>, child_sets: &[BTreeSet<usize>]) -> bool {
    let mut current = nfa.eps_closure(&[nfa.start()].into_iter().collect());
    for set in child_sets {
        if set.is_empty() {
            return false;
        }
        let mut next = BTreeSet::new();
        for sym in set {
            next.extend(nfa.step_closed(&current, sym));
        }
        current = next;
        if current.is_empty() {
            return false;
        }
    }
    current.iter().any(|q| nfa.accepting().contains(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_xmltree::TreeBuilder;

    fn books_dtd() -> Dtd {
        Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .rule("author", "eps")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap()
    }

    #[test]
    fn dtd_automaton_accepts_exactly_conforming_skeletons() {
        let dtd = books_dtd();
        let (a, _) = Unfta::from_dtd(&dtd);
        let good = TreeBuilder::new("db")
            .child("book", |b| b.leaf("author").leaf("author"))
            .child("book", |b| b)
            .build();
        assert!(a.accepts(&good));
        // author directly under db violates the content model
        let bad = TreeBuilder::new("db").leaf("author").build();
        assert!(!bad.children(bad.root()).is_empty());
        assert!(!a.accepts(&bad));
        // wrong root
        let wrong_root = TreeBuilder::new("bib").build();
        assert!(!a.accepts(&wrong_root));
    }

    #[test]
    fn emptiness_of_dtd_automata_matches_dtd_satisfiability() {
        let sat = books_dtd();
        let (a, _) = Unfta::from_dtd(&sat);
        assert!(!a.is_empty_language());

        let unsat = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "b")
            .rule("b", "a")
            .build()
            .unwrap();
        let (b, _) = Unfta::from_dtd(&unsat);
        assert!(b.is_empty_language());
        assert_eq!(unsat.is_satisfiable(), !b.is_empty_language());
    }

    #[test]
    fn hand_built_automaton_counting_parity() {
        // A two-state automaton over label "a": state 0 = even number of
        // children... simpler: state 0 is assigned to leaves, state 1 to
        // nodes all of whose children are in state 0. Accepting = {1}.
        let mut a = Unfta::new(2, [1]);
        a.add_transition(0, "a", Regex::Epsilon);
        a.add_transition(1, "a", Regex::plus(Regex::Symbol(0usize)));
        let leaf_only = XmlTree::new("a");
        assert!(!a.accepts(&leaf_only)); // root is a leaf → state 0 only
        let two_level = TreeBuilder::new("a").leaf("a").leaf("a").build();
        assert!(a.accepts(&two_level));
        let three_level = TreeBuilder::new("a").child("a", |x| x.leaf("a")).build();
        // the middle node can only take state 1 (its child is a leaf), and the
        // root requires all children in state 0 → reject
        assert!(!a.accepts(&three_level));
        assert!(!a.is_empty_language());
    }

    #[test]
    fn inhabited_states_fixpoint() {
        // state 0 inhabited (leaf rule), state 1 requires a child in state 2
        // which is never inhabited.
        let mut a = Unfta::new(3, [1]);
        a.add_transition(0, "a", Regex::Epsilon);
        a.add_transition(1, "a", Regex::Symbol(2usize));
        let inhabited = a.inhabited_states();
        assert!(inhabited.contains(&0));
        assert!(!inhabited.contains(&1));
        assert!(!inhabited.contains(&2));
        assert!(a.is_empty_language());
    }
}
