//! # xdx-automata — unranked tree automata and pattern/DTD satisfiability
//!
//! The automata substrate behind the consistency results of Arenas & Libkin,
//! *"XML Data Exchange: Consistency and Query Answering"* (PODS 2005 /
//! JACM 2008).
//!
//! Appendix A of the paper recalls unranked nondeterministic finite tree
//! automata (UNFTA): states, accepting states, and for every (state, label)
//! pair a *regular horizontal language* over the state set constraining the
//! children's state word. DTDs embed into UNFTAs directly (states = element
//! types, horizontal languages = content models), and the EXPTIME membership
//! proof of Theorem 4.1 works by building automata for tree patterns,
//! complementing them, taking products with the DTD automata and testing
//! emptiness.
//!
//! This crate provides:
//!
//! * [`unfta`] — an explicit [`unfta::Unfta`] type with runs, acceptance and
//!   emptiness, plus the DTD-to-automaton embedding;
//! * [`satisfiability`] — the engine actually used by the consistency
//!   checker: given a DTD and two sets of (attribute-erased) tree patterns,
//!   decide whether some conforming tree satisfies all patterns of the first
//!   set and none of the second. It explores exactly the reachable part of
//!   the product automaton of the paper's proof (profiles of witnessed
//!   subformulae), so it is observationally equivalent to the paper's
//!   construction while staying practical; the worst case remains
//!   exponential, as Theorem 4.1 says it must.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod satisfiability;
pub mod unfta;

pub use satisfiability::{PatternSatisfiability, Profile};
pub use unfta::Unfta;
