//! Satisfiability of tree patterns under a DTD.
//!
//! The decision problem at the heart of Theorem 4.1 is: given a DTD `D` and
//! two finite sets of (variable-free) tree patterns `Pos` and `Neg`, is there
//! a tree `T ⊨ D` with `T ⊨ ϕ` for every `ϕ ∈ Pos` and `T ⊭ ψ` for every
//! `ψ ∈ Neg`?
//!
//! The paper answers it by compiling every pattern into a deterministic
//! unranked tree automaton, complementing the negative ones, taking the
//! product with the DTD automaton and testing emptiness — an explicitly
//! exponential construction. This module performs the *same* decision by
//! exploring only the reachable part of that product: the "state" of a node
//! is its [`Profile`] — which subformulae it witnesses and which are
//! witnessed somewhere in its subtree — and we compute, per element type, the
//! set of profiles achievable by conforming subtrees, by a fixpoint that
//! walks the content-model NFAs. Worst-case behaviour is still exponential
//! (it has to be: the problem is EXPTIME-complete), but inputs arising from
//! realistic settings stay small.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use xdx_patterns::{LabelTest, TreePattern};
use xdx_xmltree::{Dtd, ElementType};

/// The profile of a node with respect to a set of subformulae: the
/// subformulae it witnesses, and the subformulae witnessed by some node of
/// its subtree (itself included).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Profile {
    /// Indices of subformulae witnessed at the node itself.
    pub witnessed: BTreeSet<usize>,
    /// Indices of subformulae witnessed at the node or below.
    pub below: BTreeSet<usize>,
}

/// Index of subformulae of a collection of patterns.
#[derive(Debug, Clone)]
struct SubformulaTable {
    entries: Vec<SubEntry>,
}

#[derive(Debug, Clone)]
enum SubEntry {
    /// `α[ϕ1,…,ϕk]` with an erased attribute formula: `None` is the wildcard.
    Node {
        label: Option<ElementType>,
        children: Vec<usize>,
    },
    /// `//ϕ`.
    Descendant(usize),
}

impl SubformulaTable {
    fn new() -> Self {
        SubformulaTable {
            entries: Vec::new(),
        }
    }

    /// Insert a pattern (erasing attribute bindings) and return the index of
    /// its top-level subformula.
    fn insert(&mut self, pattern: &TreePattern) -> usize {
        match pattern {
            TreePattern::Node { attr, children } => {
                let child_ids: Vec<usize> = children.iter().map(|c| self.insert(c)).collect();
                let label = match &attr.label {
                    LabelTest::Wildcard => None,
                    LabelTest::Element(e) => Some(e.clone()),
                };
                self.entries.push(SubEntry::Node {
                    label,
                    children: child_ids,
                });
                self.entries.len() - 1
            }
            TreePattern::Descendant(inner) => {
                let inner_id = self.insert(inner);
                self.entries.push(SubEntry::Descendant(inner_id));
                self.entries.len() - 1
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// The subformulae witnessed at a node labelled `label` whose children
    /// jointly witness `children_witnessed` and jointly have
    /// `children_below` somewhere in their subtrees.
    fn witnessed_at(
        &self,
        label: &ElementType,
        children_witnessed: &BTreeSet<usize>,
        children_below: &BTreeSet<usize>,
    ) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (i, entry) in self.entries.iter().enumerate() {
            let ok = match entry {
                SubEntry::Node { label: l, children } => {
                    l.as_ref().map(|e| e == label).unwrap_or(true)
                        && children.iter().all(|c| children_witnessed.contains(c))
                }
                SubEntry::Descendant(inner) => children_below.contains(inner),
            };
            if ok {
                out.insert(i);
            }
        }
        out
    }
}

/// A satisfiability engine bound to a fixed DTD.
#[derive(Debug, Clone)]
pub struct PatternSatisfiability {
    dtd: Dtd,
}

impl PatternSatisfiability {
    /// Create an engine for the given DTD.
    pub fn new(dtd: &Dtd) -> Self {
        PatternSatisfiability { dtd: dtd.clone() }
    }

    /// Is there a tree `T ⊨ D` such that every pattern of `pos` holds in `T`
    /// and no pattern of `neg` does? Attribute bindings in the patterns are
    /// ignored (erased), exactly as Claim 4.2 licenses for consistency
    /// checking.
    ///
    /// Accepts owned or borrowed pattern slices (`&[TreePattern]` or
    /// `&[&TreePattern]`), so subset-enumeration callers need not clone
    /// patterns per subset.
    pub fn satisfiable<P: std::borrow::Borrow<TreePattern>>(&self, pos: &[P], neg: &[P]) -> bool {
        self.witnessing_profile(pos, neg).is_some()
    }

    /// Like [`PatternSatisfiability::satisfiable`], but returns the root
    /// profile witnessing satisfiability.
    pub fn witnessing_profile<P: std::borrow::Borrow<TreePattern>>(
        &self,
        pos: &[P],
        neg: &[P],
    ) -> Option<Profile> {
        let mut table = SubformulaTable::new();
        let pos_tops: Vec<usize> = pos.iter().map(|p| table.insert(p.borrow())).collect();
        let neg_tops: Vec<usize> = neg.iter().map(|p| table.insert(p.borrow())).collect();
        let achievable = self.achievable_profiles(&table);
        let root_profiles = achievable.get(self.dtd.root())?;
        root_profiles
            .iter()
            .find(|profile| {
                pos_tops.iter().all(|t| profile.below.contains(t))
                    && neg_tops.iter().all(|t| !profile.below.contains(t))
            })
            .cloned()
    }

    /// Compute, for every element type, the set of profiles achievable by a
    /// conforming subtree rooted at that element type.
    fn achievable_profiles(
        &self,
        table: &SubformulaTable,
    ) -> BTreeMap<ElementType, BTreeSet<Profile>> {
        let elements: Vec<&ElementType> = self.dtd.element_types().collect();
        let mut achievable: BTreeMap<ElementType, BTreeSet<Profile>> = elements
            .iter()
            .map(|&e| (e.clone(), BTreeSet::new()))
            .collect();
        loop {
            let mut changed = false;
            for &element in &elements {
                let aggregates = self.horizontal_aggregates(element, &achievable, table);
                for (children_witnessed, children_below) in aggregates {
                    let witnessed =
                        table.witnessed_at(element, &children_witnessed, &children_below);
                    let mut below = children_below.clone();
                    below.extend(witnessed.iter().copied());
                    let profile = Profile { witnessed, below };
                    if achievable
                        .get_mut(element)
                        .expect("all elements present")
                        .insert(profile)
                    {
                        changed = true;
                    }
                }
            }
            if !changed {
                return achievable;
            }
        }
    }

    /// All pairs (⋃ witnessed, ⋃ below) over the children of a node labelled
    /// `element` whose child-label word is in the content model and whose
    /// children's profiles are drawn from `achievable`.
    fn horizontal_aggregates(
        &self,
        element: &ElementType,
        achievable: &BTreeMap<ElementType, BTreeSet<Profile>>,
        table: &SubformulaTable,
    ) -> BTreeSet<(BTreeSet<usize>, BTreeSet<usize>)> {
        let Some(nfa) = self.dtd.content_nfa(element) else {
            return BTreeSet::new();
        };
        let _ = table.len();
        type Config = (BTreeSet<usize>, BTreeSet<usize>, BTreeSet<usize>);
        let start_states = nfa.eps_closure(&[nfa.start()].into_iter().collect());
        let mut seen: BTreeSet<Config> = BTreeSet::new();
        let mut queue: VecDeque<Config> = VecDeque::new();
        let initial: Config = (start_states, BTreeSet::new(), BTreeSet::new());
        seen.insert(initial.clone());
        queue.push_back(initial);
        let mut results = BTreeSet::new();
        while let Some((states, agg_w, agg_b)) = queue.pop_front() {
            if states.iter().any(|q| nfa.accepting().contains(q)) {
                results.insert((agg_w.clone(), agg_b.clone()));
            }
            for symbol in nfa.alphabet() {
                let next_states = nfa.step_closed(&states, symbol);
                if next_states.is_empty() {
                    continue;
                }
                let Some(profiles) = achievable.get(symbol) else {
                    continue;
                };
                for profile in profiles {
                    let mut w = agg_w.clone();
                    w.extend(profile.witnessed.iter().copied());
                    let mut b = agg_b.clone();
                    b.extend(profile.below.iter().copied());
                    let config = (next_states.clone(), w, b);
                    if seen.insert(config.clone()) {
                        queue.push_back(config);
                    }
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_patterns::parse_pattern;

    fn p(src: &str) -> TreePattern {
        parse_pattern(src).unwrap()
    }

    #[test]
    fn section_4_inconsistency_example() {
        // Target DTD r → 1|2, 1 → ε, 2 → ε cannot satisfy the pattern
        // r[one[two]] (the paper's r[1[2(@a=x)]] with names spelt out).
        let dtd = Dtd::builder("r")
            .rule("r", "one|two")
            .rule("one", "eps")
            .rule("two", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(!solver.satisfiable(&[p("r[one[two]]")], &[]));
        // but r[one] alone is satisfiable
        assert!(solver.satisfiable(&[p("r[one]")], &[]));
        assert!(solver.satisfiable(&[p("r[two]")], &[]));
        // and r[one] ∧ r[two] is not (only one child allowed)
        assert!(!solver.satisfiable(&[p("r[one]"), p("r[two]")], &[]));
    }

    #[test]
    fn positive_and_negative_patterns_interact() {
        // D: r → a* ; "has an a child" and "has no a child" conflict.
        let dtd = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        let has_a = p("r[a]");
        assert!(solver.satisfiable(std::slice::from_ref(&has_a), &[]));
        assert!(solver.satisfiable(&[], std::slice::from_ref(&has_a)));
        assert!(!solver.satisfiable(std::slice::from_ref(&has_a), std::slice::from_ref(&has_a)));
    }

    #[test]
    fn descendant_patterns() {
        // D: r → a, a → b?, b → ε
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "b?")
            .rule("b", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(solver.satisfiable(&[p("//b")], &[]));
        assert!(solver.satisfiable(&[p("r[//b]")], &[]));
        assert!(solver.satisfiable(&[p("//a[b]")], &[]));
        // //c can never hold
        assert!(!solver.satisfiable(&[p("//c")], &[]));
        // negated descendant: a tree without any b exists (a's b child is optional)
        assert!(solver.satisfiable(&[], &[p("//b")]));
        // but we cannot have //b and also forbid a[b]
        assert!(!solver.satisfiable(&[p("//b")], &[p("a[b]")]));
    }

    #[test]
    fn wildcard_patterns() {
        let dtd = Dtd::builder("r")
            .rule("r", "x y")
            .rule("x", "eps")
            .rule("y", "z?")
            .rule("z", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        // some child of the root has a child (only y can, via z)
        assert!(solver.satisfiable(&[p("r[_[_]]")], &[]));
        // forbidding it is also possible (omit z)
        assert!(solver.satisfiable(&[], &[p("r[_[_]]")]));
        // _[_[_[_]]] needs depth 4, impossible here
        assert!(!solver.satisfiable(&[p("_[_[_[_]]]")], &[]));
    }

    #[test]
    fn recursive_dtds_terminate_and_answer_correctly() {
        // D: r → a, a → a | ε : arbitrarily deep chains of a's.
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "a | eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(solver.satisfiable(&[p("//a[a[a]]")], &[]));
        assert!(solver.satisfiable(&[p("r[a[a[a[a]]]]")], &[]));
        // Forbidding any a at all is impossible (r must have one).
        assert!(!solver.satisfiable(&[], &[p("r[a]")]));
        // Forbidding depth ≥ 3 while requiring depth ≥ 2 is fine.
        assert!(solver.satisfiable(&[p("//a[a]")], &[p("//a[a[a]]")]));
    }

    #[test]
    fn unknown_element_types_are_unsatisfiable() {
        let dtd = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(!solver.satisfiable(&[p("r[ghost]")], &[]));
        assert!(solver.satisfiable(&[], &[p("r[ghost]")]));
    }

    #[test]
    fn attribute_bindings_are_erased() {
        // Claim 4.2: bindings do not affect satisfiability.
        let dtd = Dtd::builder("r")
            .rule("r", "a*")
            .attributes("a", ["@x"])
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(solver.satisfiable(&[p("r[a(@x=$v)]")], &[]));
        assert_eq!(
            solver.satisfiable(&[p("r[a(@x=$v)]")], &[]),
            solver.satisfiable(&[p("r[a]")], &[])
        );
    }

    #[test]
    fn witnessing_profile_reports_what_holds() {
        let dtd = Dtd::builder("r").rule("r", "a b").build().unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        let profile = solver
            .witnessing_profile(&[p("r[a]"), p("r[b]")], &[p("r[c]")])
            .expect("satisfiable");
        // the root witnesses both positive top-level patterns
        assert!(profile.witnessed.len() >= 2);
    }

    #[test]
    fn unsatisfiable_dtd_admits_nothing() {
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "a")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(!solver.satisfiable::<TreePattern>(&[], &[]));
        assert!(!solver.satisfiable(&[p("r")], &[]));
    }
}
