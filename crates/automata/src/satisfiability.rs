//! Satisfiability of tree patterns under a DTD.
//!
//! The decision problem at the heart of Theorem 4.1 is: given a DTD `D` and
//! two finite sets of (variable-free) tree patterns `Pos` and `Neg`, is there
//! a tree `T ⊨ D` with `T ⊨ ϕ` for every `ϕ ∈ Pos` and `T ⊭ ψ` for every
//! `ψ ∈ Neg`?
//!
//! The paper answers it by compiling every pattern into a deterministic
//! unranked tree automaton, complementing the negative ones, taking the
//! product with the DTD automaton and testing emptiness — an explicitly
//! exponential construction. This module performs the *same* decision by
//! exploring only the reachable part of that product: the "state" of a node
//! is its [`Profile`] — which subformulae it witnesses and which are
//! witnessed somewhere in its subtree — and we compute, per element type, the
//! set of profiles achievable by conforming subtrees, by a fixpoint that
//! walks the content-model NFAs. Worst-case behaviour is still exponential
//! (it has to be: the problem is EXPTIME-complete), but inputs arising from
//! realistic settings stay small.
//!
//! Two implementations share the public API:
//!
//! * the **fast path** ([`PatternSatisfiability::satisfiable`]) interns
//!   subformulae into dense indices and keeps profiles as `u64`-block bit
//!   sets ([`StateMask`]), walking pre-compiled bit-parallel content-model
//!   NFAs ([`BitsetNfa`], built once per engine and reused by every query —
//!   the general consistency check calls `satisfiable` up to `2^|Σ_ST|`
//!   times against the same engine);
//! * the **reference path** (`*_reference`) is the original
//!   `BTreeSet<usize>` transcription, kept as the source of truth and
//!   differential-tested against the fast path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use xdx_patterns::{LabelTest, TreePattern};
use xdx_relang::{BitsetNfa, StateMask};
use xdx_xmltree::{Dtd, ElementType};

/// The profile of a node with respect to a set of subformulae: the
/// subformulae it witnesses, and the subformulae witnessed by some node of
/// its subtree (itself included).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Profile {
    /// Indices of subformulae witnessed at the node itself.
    pub witnessed: BTreeSet<usize>,
    /// Indices of subformulae witnessed at the node or below.
    pub below: BTreeSet<usize>,
}

/// A [`Profile`] in bit-set form: blocks of 64 subformula-index bits. The
/// fixpoint unions and set-insertions that dominate the reference path
/// become word-wide `OR`s and short memcmps.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MaskProfile {
    witnessed: StateMask,
    below: StateMask,
}

/// Index of subformulae of a collection of patterns.
#[derive(Debug, Clone)]
struct SubformulaTable {
    entries: Vec<SubEntry>,
}

#[derive(Debug, Clone)]
enum SubEntry {
    /// `α[ϕ1,…,ϕk]` with an erased attribute formula: `None` is the wildcard.
    Node {
        label: Option<ElementType>,
        children: Vec<usize>,
    },
    /// `//ϕ`.
    Descendant(usize),
}

impl SubformulaTable {
    fn new() -> Self {
        SubformulaTable {
            entries: Vec::new(),
        }
    }

    /// Insert a pattern (erasing attribute bindings) and return the index of
    /// its top-level subformula.
    fn insert(&mut self, pattern: &TreePattern) -> usize {
        match pattern {
            TreePattern::Node { attr, children } => {
                let child_ids: Vec<usize> = children.iter().map(|c| self.insert(c)).collect();
                let label = match &attr.label {
                    LabelTest::Wildcard => None,
                    LabelTest::Element(e) => Some(e.clone()),
                };
                self.entries.push(SubEntry::Node {
                    label,
                    children: child_ids,
                });
                self.entries.len() - 1
            }
            TreePattern::Descendant(inner) => {
                let inner_id = self.insert(inner);
                self.entries.push(SubEntry::Descendant(inner_id));
                self.entries.len() - 1
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// The subformulae witnessed at a node labelled `label` whose children
    /// jointly witness `children_witnessed` and jointly have
    /// `children_below` somewhere in their subtrees.
    fn witnessed_at(
        &self,
        label: &ElementType,
        children_witnessed: &BTreeSet<usize>,
        children_below: &BTreeSet<usize>,
    ) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for (i, entry) in self.entries.iter().enumerate() {
            let ok = match entry {
                SubEntry::Node { label: l, children } => {
                    l.as_ref().map(|e| e == label).unwrap_or(true)
                        && children.iter().all(|c| children_witnessed.contains(c))
                }
                SubEntry::Descendant(inner) => children_below.contains(inner),
            };
            if ok {
                out.insert(i);
            }
        }
        out
    }

    /// Bit-set analogue of [`SubformulaTable::witnessed_at`].
    fn witnessed_at_masks(
        &self,
        label: &ElementType,
        children_witnessed: &StateMask,
        children_below: &StateMask,
    ) -> StateMask {
        let mut out = StateMask::empty(self.len());
        for (i, entry) in self.entries.iter().enumerate() {
            let ok = match entry {
                SubEntry::Node { label: l, children } => {
                    l.as_ref().map(|e| e == label).unwrap_or(true)
                        && children.iter().all(|&c| children_witnessed.contains(c))
                }
                SubEntry::Descendant(inner) => children_below.contains(*inner),
            };
            if ok {
                out.insert(i);
            }
        }
        out
    }
}

/// A satisfiability engine bound to a fixed DTD.
#[derive(Debug, Clone)]
pub struct PatternSatisfiability {
    dtd: Dtd,
    /// Bit-parallel content-model NFAs, compiled once per element type when
    /// the engine is built and reused by every query.
    bitsets: BTreeMap<ElementType, BitsetNfa<ElementType>>,
}

impl PatternSatisfiability {
    /// Create an engine for the given DTD (compiling every content model's
    /// bit-parallel NFA up front).
    pub fn new(dtd: &Dtd) -> Self {
        let bitsets = dtd
            .element_types()
            .map(|e| {
                let nfa = dtd
                    .content_nfa(e)
                    .expect("every element type of a DTD has a content model");
                (e.clone(), BitsetNfa::from_nfa(nfa))
            })
            .collect();
        PatternSatisfiability {
            dtd: dtd.clone(),
            bitsets,
        }
    }

    /// Is there a tree `T ⊨ D` such that every pattern of `pos` holds in `T`
    /// and no pattern of `neg` does? Attribute bindings in the patterns are
    /// ignored (erased), exactly as Claim 4.2 licenses for consistency
    /// checking.
    ///
    /// Accepts owned or borrowed pattern slices (`&[TreePattern]` or
    /// `&[&TreePattern]`), so subset-enumeration callers need not clone
    /// patterns per subset. Runs on the bit-set fast path; the original
    /// implementation is kept as
    /// [`PatternSatisfiability::satisfiable_reference`] and the two are
    /// differential-tested.
    pub fn satisfiable<P: std::borrow::Borrow<TreePattern>>(&self, pos: &[P], neg: &[P]) -> bool {
        self.witnessing_profile(pos, neg).is_some()
    }

    /// Like [`PatternSatisfiability::satisfiable`], but returns the root
    /// profile witnessing satisfiability.
    pub fn witnessing_profile<P: std::borrow::Borrow<TreePattern>>(
        &self,
        pos: &[P],
        neg: &[P],
    ) -> Option<Profile> {
        let mut table = SubformulaTable::new();
        let pos_tops: Vec<usize> = pos.iter().map(|p| table.insert(p.borrow())).collect();
        let neg_tops: Vec<usize> = neg.iter().map(|p| table.insert(p.borrow())).collect();
        let achievable = self.achievable_profiles_masks(&table);
        let root_profiles = achievable.get(self.dtd.root())?;
        root_profiles
            .iter()
            .find(|profile| {
                pos_tops.iter().all(|&t| profile.below.contains(t))
                    && neg_tops.iter().all(|&t| !profile.below.contains(t))
            })
            .map(|profile| Profile {
                witnessed: profile.witnessed.to_btree(),
                below: profile.below.to_btree(),
            })
    }

    /// Reference implementation of [`PatternSatisfiability::satisfiable`]
    /// (`BTreeSet<usize>` profiles, `BTreeSet`-simulation of the content
    /// models).
    pub fn satisfiable_reference<P: std::borrow::Borrow<TreePattern>>(
        &self,
        pos: &[P],
        neg: &[P],
    ) -> bool {
        self.witnessing_profile_reference(pos, neg).is_some()
    }

    /// Reference implementation of
    /// [`PatternSatisfiability::witnessing_profile`].
    pub fn witnessing_profile_reference<P: std::borrow::Borrow<TreePattern>>(
        &self,
        pos: &[P],
        neg: &[P],
    ) -> Option<Profile> {
        let mut table = SubformulaTable::new();
        let pos_tops: Vec<usize> = pos.iter().map(|p| table.insert(p.borrow())).collect();
        let neg_tops: Vec<usize> = neg.iter().map(|p| table.insert(p.borrow())).collect();
        let achievable = self.achievable_profiles_reference(&table);
        let root_profiles = achievable.get(self.dtd.root())?;
        root_profiles
            .iter()
            .find(|profile| {
                pos_tops.iter().all(|t| profile.below.contains(t))
                    && neg_tops.iter().all(|t| !profile.below.contains(t))
            })
            .cloned()
    }

    // ------------------------------------------------------------------
    // Fast path: bit-set profiles over pre-compiled bitset NFAs
    // ------------------------------------------------------------------

    /// Compute, for every element type, the set of profiles achievable by a
    /// conforming subtree rooted at that element type (bit-set form).
    fn achievable_profiles_masks(
        &self,
        table: &SubformulaTable,
    ) -> BTreeMap<ElementType, BTreeSet<MaskProfile>> {
        let elements: Vec<&ElementType> = self.dtd.element_types().collect();
        let mut achievable: BTreeMap<ElementType, BTreeSet<MaskProfile>> = elements
            .iter()
            .map(|&e| (e.clone(), BTreeSet::new()))
            .collect();
        loop {
            let mut changed = false;
            for &element in &elements {
                let aggregates = self.horizontal_aggregates_masks(element, &achievable, table);
                for (children_witnessed, children_below) in aggregates {
                    let witnessed =
                        table.witnessed_at_masks(element, &children_witnessed, &children_below);
                    let mut below = children_below.clone();
                    below.union_with(&witnessed);
                    let profile = MaskProfile { witnessed, below };
                    if achievable
                        .get_mut(element)
                        .expect("all elements present")
                        .insert(profile)
                    {
                        changed = true;
                    }
                }
            }
            if !changed {
                return achievable;
            }
        }
    }

    /// All pairs (⋃ witnessed, ⋃ below) over the children of a node labelled
    /// `element` whose child-label word is in the content model and whose
    /// children's profiles are drawn from `achievable` (bit-set form, walked
    /// on the pre-compiled bit-parallel NFA).
    fn horizontal_aggregates_masks(
        &self,
        element: &ElementType,
        achievable: &BTreeMap<ElementType, BTreeSet<MaskProfile>>,
        table: &SubformulaTable,
    ) -> BTreeSet<(StateMask, StateMask)> {
        let Some(nfa) = self.bitsets.get(element) else {
            return BTreeSet::new();
        };
        let nsub = table.len();
        type Config = (StateMask, StateMask, StateMask);
        let initial: Config = (
            nfa.start_mask().clone(),
            StateMask::empty(nsub),
            StateMask::empty(nsub),
        );
        let mut seen: BTreeSet<Config> = BTreeSet::new();
        let mut queue: VecDeque<Config> = VecDeque::new();
        seen.insert(initial.clone());
        queue.push_back(initial);
        let mut results = BTreeSet::new();
        while let Some((states, agg_w, agg_b)) = queue.pop_front() {
            if nfa.accepts(&states) {
                results.insert((agg_w.clone(), agg_b.clone()));
            }
            for idx in 0..nfa.alphabet().len() {
                let next_states = nfa.step_mask(&states, idx);
                if next_states.is_empty() {
                    continue;
                }
                let Some(profiles) = achievable.get(&nfa.alphabet()[idx]) else {
                    continue;
                };
                for profile in profiles {
                    let mut w = agg_w.clone();
                    w.union_with(&profile.witnessed);
                    let mut b = agg_b.clone();
                    b.union_with(&profile.below);
                    let config = (next_states.clone(), w, b);
                    if seen.insert(config.clone()) {
                        queue.push_back(config);
                    }
                }
            }
        }
        results
    }

    // ------------------------------------------------------------------
    // Reference path: BTreeSet profiles (kept verbatim; source of truth)
    // ------------------------------------------------------------------

    /// Compute, for every element type, the set of profiles achievable by a
    /// conforming subtree rooted at that element type.
    fn achievable_profiles_reference(
        &self,
        table: &SubformulaTable,
    ) -> BTreeMap<ElementType, BTreeSet<Profile>> {
        let elements: Vec<&ElementType> = self.dtd.element_types().collect();
        let mut achievable: BTreeMap<ElementType, BTreeSet<Profile>> = elements
            .iter()
            .map(|&e| (e.clone(), BTreeSet::new()))
            .collect();
        loop {
            let mut changed = false;
            for &element in &elements {
                let aggregates = self.horizontal_aggregates_reference(element, &achievable, table);
                for (children_witnessed, children_below) in aggregates {
                    let witnessed =
                        table.witnessed_at(element, &children_witnessed, &children_below);
                    let mut below = children_below.clone();
                    below.extend(witnessed.iter().copied());
                    let profile = Profile { witnessed, below };
                    if achievable
                        .get_mut(element)
                        .expect("all elements present")
                        .insert(profile)
                    {
                        changed = true;
                    }
                }
            }
            if !changed {
                return achievable;
            }
        }
    }

    /// All pairs (⋃ witnessed, ⋃ below) over the children of a node labelled
    /// `element` whose child-label word is in the content model and whose
    /// children's profiles are drawn from `achievable`.
    fn horizontal_aggregates_reference(
        &self,
        element: &ElementType,
        achievable: &BTreeMap<ElementType, BTreeSet<Profile>>,
        table: &SubformulaTable,
    ) -> BTreeSet<(BTreeSet<usize>, BTreeSet<usize>)> {
        let Some(nfa) = self.dtd.content_nfa(element) else {
            return BTreeSet::new();
        };
        let _ = table.len();
        type Config = (BTreeSet<usize>, BTreeSet<usize>, BTreeSet<usize>);
        let start_states = nfa.eps_closure(&[nfa.start()].into_iter().collect());
        let mut seen: BTreeSet<Config> = BTreeSet::new();
        let mut queue: VecDeque<Config> = VecDeque::new();
        let initial: Config = (start_states, BTreeSet::new(), BTreeSet::new());
        seen.insert(initial.clone());
        queue.push_back(initial);
        let mut results = BTreeSet::new();
        while let Some((states, agg_w, agg_b)) = queue.pop_front() {
            if states.iter().any(|q| nfa.accepting().contains(q)) {
                results.insert((agg_w.clone(), agg_b.clone()));
            }
            for symbol in nfa.alphabet() {
                let next_states = nfa.step_closed(&states, symbol);
                if next_states.is_empty() {
                    continue;
                }
                let Some(profiles) = achievable.get(symbol) else {
                    continue;
                };
                for profile in profiles {
                    let mut w = agg_w.clone();
                    w.extend(profile.witnessed.iter().copied());
                    let mut b = agg_b.clone();
                    b.extend(profile.below.iter().copied());
                    let config = (next_states.clone(), w, b);
                    if seen.insert(config.clone()) {
                        queue.push_back(config);
                    }
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_patterns::parse_pattern;

    fn p(src: &str) -> TreePattern {
        parse_pattern(src).unwrap()
    }

    /// Assert the fast path answer, and that the reference path agrees.
    fn sat(solver: &PatternSatisfiability, pos: &[TreePattern], neg: &[TreePattern]) -> bool {
        let fast = solver.satisfiable(pos, neg);
        let reference = solver.satisfiable_reference(pos, neg);
        assert_eq!(fast, reference, "paths disagree on pos={pos:?} neg={neg:?}");
        fast
    }

    #[test]
    fn section_4_inconsistency_example() {
        // Target DTD r → 1|2, 1 → ε, 2 → ε cannot satisfy the pattern
        // r[one[two]] (the paper's r[1[2(@a=x)]] with names spelt out).
        let dtd = Dtd::builder("r")
            .rule("r", "one|two")
            .rule("one", "eps")
            .rule("two", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(!sat(&solver, &[p("r[one[two]]")], &[]));
        // but r[one] alone is satisfiable
        assert!(sat(&solver, &[p("r[one]")], &[]));
        assert!(sat(&solver, &[p("r[two]")], &[]));
        // and r[one] ∧ r[two] is not (only one child allowed)
        assert!(!sat(&solver, &[p("r[one]"), p("r[two]")], &[]));
    }

    #[test]
    fn positive_and_negative_patterns_interact() {
        // D: r → a* ; "has an a child" and "has no a child" conflict.
        let dtd = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        let has_a = [p("r[a]")];
        assert!(sat(&solver, &has_a, &[]));
        assert!(sat(&solver, &[], &has_a));
        assert!(!sat(&solver, &has_a, &has_a));
    }

    #[test]
    fn descendant_patterns() {
        // D: r → a, a → b?, b → ε
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "b?")
            .rule("b", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(sat(&solver, &[p("//b")], &[]));
        assert!(sat(&solver, &[p("r[//b]")], &[]));
        assert!(sat(&solver, &[p("//a[b]")], &[]));
        // //c can never hold
        assert!(!sat(&solver, &[p("//c")], &[]));
        // negated descendant: a tree without any b exists (a's b child is optional)
        assert!(sat(&solver, &[], &[p("//b")]));
        // but we cannot have //b and also forbid a[b]
        assert!(!sat(&solver, &[p("//b")], &[p("a[b]")]));
    }

    #[test]
    fn wildcard_patterns() {
        let dtd = Dtd::builder("r")
            .rule("r", "x y")
            .rule("x", "eps")
            .rule("y", "z?")
            .rule("z", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        // some child of the root has a child (only y can, via z)
        assert!(sat(&solver, &[p("r[_[_]]")], &[]));
        // forbidding it is also possible (omit z)
        assert!(sat(&solver, &[], &[p("r[_[_]]")]));
        // _[_[_[_]]] needs depth 4, impossible here
        assert!(!sat(&solver, &[p("_[_[_[_]]]")], &[]));
    }

    #[test]
    fn recursive_dtds_terminate_and_answer_correctly() {
        // D: r → a, a → a | ε : arbitrarily deep chains of a's.
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "a | eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(sat(&solver, &[p("//a[a[a]]")], &[]));
        assert!(sat(&solver, &[p("r[a[a[a[a]]]]")], &[]));
        // Forbidding any a at all is impossible (r must have one).
        assert!(!sat(&solver, &[], &[p("r[a]")]));
        // Forbidding depth ≥ 3 while requiring depth ≥ 2 is fine.
        assert!(sat(&solver, &[p("//a[a]")], &[p("//a[a[a]]")]));
    }

    #[test]
    fn unknown_element_types_are_unsatisfiable() {
        let dtd = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(!sat(&solver, &[p("r[ghost]")], &[]));
        assert!(sat(&solver, &[], &[p("r[ghost]")]));
    }

    #[test]
    fn attribute_bindings_are_erased() {
        // Claim 4.2: bindings do not affect satisfiability.
        let dtd = Dtd::builder("r")
            .rule("r", "a*")
            .attributes("a", ["@x"])
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        assert!(sat(&solver, &[p("r[a(@x=$v)]")], &[]));
        assert_eq!(
            solver.satisfiable(&[p("r[a(@x=$v)]")], &[]),
            solver.satisfiable(&[p("r[a]")], &[])
        );
    }

    #[test]
    fn witnessing_profile_reports_what_holds() {
        let dtd = Dtd::builder("r").rule("r", "a b").build().unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        let profile = solver
            .witnessing_profile(&[p("r[a]"), p("r[b]")], &[p("r[c]")])
            .expect("satisfiable");
        // the root witnesses both positive top-level patterns
        assert!(profile.witnessed.len() >= 2);
        let reference = solver
            .witnessing_profile_reference(&[p("r[a]"), p("r[b]")], &[p("r[c]")])
            .expect("satisfiable");
        assert!(reference.witnessed.len() >= 2);
    }

    #[test]
    fn unsatisfiable_dtd_admits_nothing() {
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "a")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        let none: [TreePattern; 0] = [];
        assert!(!sat(&solver, &none, &none));
        assert!(!sat(&solver, &[p("r")], &[]));
    }

    #[test]
    fn differential_sweep_over_pattern_combinations() {
        // Exhaustive 2-set sweep over a pattern pool on a DTD with choice,
        // repetition, optionality and recursion — the fast and reference
        // paths must agree on every (pos, neg) pair.
        let dtd = Dtd::builder("r")
            .rule("r", "a* (b|c)")
            .rule("a", "d?")
            .rule("b", "a*")
            .rule("c", "eps")
            .rule("d", "eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        let pool = [
            p("r[a]"),
            p("r[b]"),
            p("r[c]"),
            p("//d"),
            p("//a[d]"),
            p("r[a, b]"),
            p("_[_[d]]"),
            p("//b[a[d]]"),
            p("r[ghost]"),
        ];
        for i in 0..pool.len() {
            for j in 0..pool.len() {
                let pos = [pool[i].clone()];
                let neg = [pool[j].clone()];
                sat(&solver, &pos, &neg);
                sat(&solver, &pos, &[]);
            }
        }
    }

    #[test]
    fn profiles_wider_than_64_subformulae_still_work() {
        // > 64 subformulae forces multi-block masks; deep chains of a's give
        // each pattern many subformulae.
        let dtd = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "a | eps")
            .build()
            .unwrap();
        let solver = PatternSatisfiability::new(&dtd);
        // A chain pattern of depth 40 (~40 subformulae) twice: > 64 total.
        let mut deep = String::from("a");
        for _ in 0..39 {
            deep = format!("a[{deep}]");
        }
        let chain = p(&format!("//{deep}"));
        let pos = [chain.clone(), p("r[a]")];
        let neg = [chain];
        assert!(sat(&solver, &pos, &[]));
        // Requiring and forbidding the same chain is unsatisfiable.
        assert!(!sat(&solver, &pos, &neg));
    }
}
