//! # xdx-obs
//!
//! The dependency-free observability core shared by the engine, the store
//! and the serving front-end:
//!
//! * [`Histogram`] — a lock-free, alloc-free log₂-bucketed latency/size
//!   histogram (`[AtomicU64; 64]` buckets plus count/sum/min/max), safe to
//!   record into from any number of threads concurrently;
//! * [`HistogramSnapshot`] — a point-in-time copy with exact count/sum/
//!   min/max and estimated p50/p90/p99, mergeable across histograms (e.g.
//!   per-worker shards, or per-process scrapes on a router);
//! * [`Counter`] / [`Gauge`] — thin relaxed atomics;
//! * [`MetricRegistry`] — a fixed table of **static-name** metrics whose
//!   name ordering is asserted once at construction, so exporters can walk
//!   it without sorting or allocating per scrape;
//! * [`Trace`] — a per-request phase timer: a fixed array of phase
//!   durations advanced by [`Trace::step`], designed to ride through a
//!   request pipeline (decode → queue → … → flush) with one `Instant`
//!   read per phase boundary and zero allocation;
//! * [`prom`] — a Prometheus-style text exposition renderer.
//!
//! The memory-ordering argument for the lock-free histogram (and why the
//! recording path needs no sampling at current request rates) lives in
//! `crates/obs/DESIGN.md`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Log₂ histogram
// ---------------------------------------------------------------------------

/// Number of log₂ buckets. Bucket 0 holds the value 0; bucket `i` (for
/// `1 <= i <= 62`) holds `2^(i-1) ..= 2^i - 1`; bucket 63 holds everything
/// from `2^62` up. 64 buckets cover the full `u64` range, so a nanosecond
/// histogram spans sub-nanosecond to ~584 years without configuration.
pub const BUCKETS: usize = 64;

/// The bucket index `value` falls into.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Smallest value in bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value in bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log₂-bucketed histogram.
///
/// [`Histogram::record`] is wait-free and allocation-free: one bucket
/// `fetch_add`, two accumulator `fetch_add`s and two `fetch_min`/`max`es,
/// all `Relaxed` (see `DESIGN.md` for why relaxed ordering is sufficient).
/// Any number of threads may record concurrently; [`Histogram::snapshot`]
/// may run concurrently with recording and observes each atom atomically
/// (a snapshot taken mid-record can be off by in-flight records, never
/// torn within one atom).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // `const` construction so histograms can live in statics. The
        // interior-mutable const is exactly the repeat-initializer idiom
        // `[AtomicU64; N]` requires (each array element gets its own copy).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records so far (exact; may trail concurrent `record`s).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: exact count/sum/min/max plus
/// the per-bucket counts, with percentile estimation and lossless merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total records.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket record counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Merge `other` into `self` (bucket-wise addition; min/max widen).
    /// Deterministic and commutative: merging per-worker or per-process
    /// snapshots in any order yields the same result.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        // The live histogram's `fetch_add` wraps on overflow; wrap here too
        // so merging shards equals having recorded into one histogram even
        // when the sums are at the edge of `u64`.
        self.sum = self.sum.wrapping_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Estimated value at percentile `p` (0–100): the upper bound of the
    /// bucket containing the `ceil(p% · count)`-th record, clamped into
    /// `[min, max]` — so p100 is exact, and the estimate of any percentile
    /// is within one power of two of the true value.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse form
    /// wire encodings ship (latency histograms rarely span more than a
    /// dozen buckets).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u8, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u8, c))
    }

    /// Rebuild a snapshot from the sparse form. Out-of-range bucket
    /// indices are ignored (forward compatibility: a newer peer could
    /// conceivably grow the bucket count).
    pub fn from_sparse(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: impl IntoIterator<Item = (u8, u64)>,
    ) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, c) in sparse {
            if let Some(slot) = buckets.get_mut(i as usize) {
                *slot += c;
            }
        }
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// A monotonically increasing counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level that can move both ways, with a high-watermark helper.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level to `v` if `v` is higher (high-watermark tracking).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// The unit a histogram's values are measured in (carried on the wire so
/// clients can format without a name convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Durations in nanoseconds.
    Nanos,
    /// Dimensionless counts (chase steps, assignments, …).
    Count,
    /// Sizes in bytes.
    Bytes,
}

impl Unit {
    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            Unit::Nanos => 0,
            Unit::Count => 1,
            Unit::Bytes => 2,
        }
    }

    /// Decode a wire tag (unknown tags read as [`Unit::Count`] — a unit is
    /// presentation metadata, never worth failing a frame over).
    pub fn from_tag(tag: u8) -> Unit {
        match tag {
            0 => Unit::Nanos,
            2 => Unit::Bytes,
            _ => Unit::Count,
        }
    }

    /// Short human suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Nanos => "ns",
            Unit::Count => "",
            Unit::Bytes => "B",
        }
    }
}

/// A fixed table of static-name metrics.
///
/// Names are given once, at construction, in strictly ascending order —
/// asserted **there**, not on every export (exporters used to re-sort and
/// `debug_assert` per call; moving the invariant to construction makes an
/// export a plain walk). Hot paths hold on to the index of the metric they
/// record into; name lookup is a binary search for cold paths only.
#[derive(Debug)]
pub struct MetricRegistry {
    counters: Box<[(&'static str, Counter)]>,
    gauges: Box<[(&'static str, Gauge)]>,
    histograms: Box<[(&'static str, Unit, Histogram)]>,
}

/// Assert strict ascending order once; the message names the offender.
fn assert_sorted(kind: &str, names: impl Iterator<Item = &'static str>) {
    let mut prev: Option<&'static str> = None;
    for name in names {
        if let Some(p) = prev {
            assert!(
                p < name,
                "{kind} names must be strictly ascending: {p:?} !< {name:?}"
            );
        }
        prev = Some(name);
    }
}

impl MetricRegistry {
    /// Build the table. Panics unless each name list is strictly ascending
    /// (this is the construction-time ordering assertion exporters rely
    /// on).
    pub fn new(
        counters: &[&'static str],
        gauges: &[&'static str],
        histograms: &[(&'static str, Unit)],
    ) -> MetricRegistry {
        assert_sorted("counter", counters.iter().copied());
        assert_sorted("gauge", gauges.iter().copied());
        assert_sorted("histogram", histograms.iter().map(|&(n, _)| n));
        MetricRegistry {
            counters: counters.iter().map(|&n| (n, Counter::new())).collect(),
            gauges: gauges.iter().map(|&n| (n, Gauge::new())).collect(),
            histograms: histograms
                .iter()
                .map(|&(n, u)| (n, u, Histogram::new()))
                .collect(),
        }
    }

    /// Counter by construction index.
    pub fn counter(&self, i: usize) -> &Counter {
        &self.counters[i].1
    }

    /// Gauge by construction index.
    pub fn gauge(&self, i: usize) -> &Gauge {
        &self.gauges[i].1
    }

    /// Histogram by construction index.
    pub fn histogram(&self, i: usize) -> &Histogram {
        &self.histograms[i].2
    }

    /// Counter index by name (cold-path lookup).
    pub fn counter_index(&self, name: &str) -> Option<usize> {
        self.counters.binary_search_by(|(n, _)| (*n).cmp(name)).ok()
    }

    /// Histogram index by name (cold-path lookup).
    pub fn histogram_index(&self, name: &str) -> Option<usize> {
        self.histograms
            .binary_search_by(|(n, _, _)| (*n).cmp(name))
            .ok()
    }

    /// `(name, value)` rows for every counter, in name order.
    pub fn counter_rows(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(n, c)| (*n, c.get()))
    }

    /// `(name, value)` rows for every gauge, in name order.
    pub fn gauge_rows(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(n, g)| (*n, g.get()))
    }

    /// `(name, unit, snapshot)` rows for every histogram, in name order.
    pub fn histogram_rows(
        &self,
    ) -> impl Iterator<Item = (&'static str, Unit, HistogramSnapshot)> + '_ {
        self.histograms
            .iter()
            .map(|(n, u, h)| (*n, *u, h.snapshot()))
    }
}

// ---------------------------------------------------------------------------
// Per-request trace
// ---------------------------------------------------------------------------

/// Maximum phases a [`Trace`] can hold. Fixed so a trace is one flat
/// allocation-free array; callers define their own phase indices (the
/// server uses 8 of these for decode → flush).
pub const MAX_PHASES: usize = 12;

/// A per-request phase timer.
///
/// A trace carries a start instant, a *mark* (the boundary of the phase
/// currently running) and one accumulated-nanoseconds slot per phase.
/// [`Trace::step`] charges everything since the mark to a phase and
/// advances the mark — one `Instant::now()` per phase boundary, nothing
/// else. A trace is `Send`, so it can ride a request through thread
/// handoffs (event loop → worker → event loop) and keep the queue/wake
/// latencies *inside* measured phases instead of between them.
#[derive(Debug, Clone)]
pub struct Trace {
    start: Instant,
    mark: Instant,
    ns: [u64; MAX_PHASES],
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// Start a trace; the mark is now.
    pub fn new() -> Trace {
        let now = Instant::now();
        Trace {
            start: now,
            mark: now,
            ns: [0; MAX_PHASES],
        }
    }

    /// Charge the time since the mark to `phase` and advance the mark.
    /// Phases may be stepped repeatedly; durations accumulate.
    #[inline]
    pub fn step(&mut self, phase: usize) {
        let now = Instant::now();
        self.ns[phase] += u64::try_from((now - self.mark).as_nanos()).unwrap_or(u64::MAX);
        self.mark = now;
    }

    /// Advance the mark without charging anyone (discard a gap).
    #[inline]
    pub fn skip(&mut self) {
        self.mark = Instant::now();
    }

    /// Add externally measured nanoseconds to `phase` (does not move the
    /// mark).
    #[inline]
    pub fn add_ns(&mut self, phase: usize, ns: u64) {
        self.ns[phase] += ns;
    }

    /// Accumulated nanoseconds of `phase`.
    pub fn phase_ns(&self, phase: usize) -> u64 {
        self.ns[phase]
    }

    /// Sum of all charged phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Wall time since the trace started.
    pub fn wall_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

// ---------------------------------------------------------------------------
// Prometheus-style text exposition
// ---------------------------------------------------------------------------

/// Prometheus text-format rendering. Metric names have `.` replaced by
/// `_`; histograms render as the conventional `_bucket`/`_sum`/`_count`
/// triplet with cumulative `le` labels on the log₂ bucket upper bounds.
pub mod prom {
    use super::{bucket_upper, HistogramSnapshot, Unit, BUCKETS};
    use std::fmt::Write;

    /// `a.b-c` → `a_b_c` (Prometheus name charset).
    pub fn sanitize(name: &str) -> String {
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }

    /// One `# TYPE … counter` + value line. Works for gauges too (the
    /// `gauge` flag only changes the TYPE line).
    pub fn scalar(out: &mut String, name: &str, value: u64, gauge: bool) {
        let name = sanitize(name);
        let kind = if gauge { "gauge" } else { "counter" };
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    }

    /// Render one histogram snapshot in Prometheus histogram convention.
    /// The unit is appended to the name (`…_ns`, `…_bytes`) so dashboards
    /// need no out-of-band unit table.
    pub fn histogram(out: &mut String, name: &str, unit: Unit, snap: &HistogramSnapshot) {
        let suffix = match unit {
            Unit::Nanos => "_ns",
            Unit::Count => "",
            Unit::Bytes => "_bytes",
        };
        let name = format!("{}{suffix}", sanitize(name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            if snap.buckets[i] == 0 {
                continue;
            }
            cumulative += snap.buckets[i];
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{name}_sum {}", snap.sum);
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1));
        }
    }

    #[test]
    fn record_snapshot_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_000_108 + 1);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn percentiles_are_within_one_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 of 1..=1000 is ~500; the estimate is its bucket's upper
        // bound (511), clamped into [1, 1000].
        assert_eq!(s.p50(), 511);
        assert_eq!(s.percentile(100.0), 1000);
        assert!(s.p99() >= 990 && s.p99() <= 1000);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn merge_is_commutative_and_lossless() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 9, 27] {
            a.record(v);
        }
        for v in [1u64, 81, 243] {
            b.record(v);
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 6);
        assert_eq!(ab.sum, 364);
        assert_eq!(ab.min, 1);
        assert_eq!(ab.max, 243);
    }

    #[test]
    fn sparse_roundtrip() {
        let h = Histogram::new();
        for v in [5u64, 5, 1 << 40] {
            h.record(v);
        }
        let s = h.snapshot();
        let back =
            HistogramSnapshot::from_sparse(s.count, s.sum, s.min, s.max, s.nonzero_buckets());
        assert_eq!(s, back);
    }

    #[test]
    fn registry_asserts_order_once() {
        let r = MetricRegistry::new(
            &["a.one", "b.two"],
            &[],
            &[("h.x", Unit::Nanos), ("h.y", Unit::Count)],
        );
        r.counter(0).inc();
        assert_eq!(r.counter_index("b.two"), Some(1));
        assert_eq!(r.histogram_index("h.y"), Some(1));
        assert_eq!(
            r.counter_rows().collect::<Vec<_>>(),
            vec![("a.one", 1), ("b.two", 0)]
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn registry_rejects_unsorted_names() {
        MetricRegistry::new(&["b", "a"], &[], &[]);
    }

    #[test]
    fn trace_steps_accumulate() {
        let mut t = Trace::new();
        std::thread::sleep(Duration::from_millis(2));
        t.step(0);
        std::thread::sleep(Duration::from_millis(2));
        t.step(1);
        t.add_ns(1, 5);
        assert!(t.phase_ns(0) >= 2_000_000);
        assert!(t.phase_ns(1) >= 2_000_005);
        assert!(t.total_ns() <= t.wall_ns());
    }

    #[test]
    fn prometheus_rendering_shape() {
        let h = Histogram::new();
        h.record(3);
        h.record(700);
        let mut out = String::new();
        prom::scalar(&mut out, "server.accepted_conns", 7, false);
        prom::histogram(&mut out, "req.solution.exec", Unit::Nanos, &h.snapshot());
        assert!(out.contains("# TYPE server_accepted_conns counter"));
        assert!(out.contains("server_accepted_conns 7"));
        assert!(out.contains("req_solution_exec_ns_bucket{le=\"3\"} 1"));
        assert!(out.contains("req_solution_exec_ns_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("req_solution_exec_ns_sum 703"));
        assert!(out.contains("req_solution_exec_ns_count 2"));
    }
}
