//! Univocal regular expressions (Definition 6.9) and the quantities
//! `fixed_a(r)`, `c_a(r)`, `c(r)` of Section 6.1.
//!
//! The dichotomy theorem (Theorem 6.2) classifies target DTDs by whether
//! their content models are *univocal*:
//!
//! * `c(r) ≤ 1`, where `c(r) = max_a c_a(r)` and `c_a(r)` is the largest
//!   number of `a`'s appearing in a "fixed" member of `π(r)` (one whose
//!   `a`-count cannot be increased by going to a ⪰-larger member), and
//! * for every string `w` with `rep(w, r) ≠ ∅`, the set `rep(w, r)` has a
//!   ⊑_w-maximum.
//!
//! `c_a(r)` is computed **exactly** from the semilinear representation of
//! `π(r)` (see [`c_sym`]); the maximum-repair condition quantifies over all
//! strings and is checked here over all multisets with per-symbol counts up
//! to a configurable bound (Proposition 6.10 shows the problem decidable via
//! Presburger arithmetic; the bounded check is the pragmatic substitution
//! documented in DESIGN.md and is exact for every expression used in the
//! paper and in this repository's benchmarks).

use crate::ast::Regex;
use crate::parikh::{parikh_image, AlphabetMap, LinearSet, SemilinearSet};
use crate::repair::{Multiset, RepairConfig, RepairContext};
use crate::Alphabet;
use std::fmt;

/// Configuration for the univocality check.
#[derive(Debug, Clone)]
pub struct UnivocalityConfig {
    /// Per-symbol count bound for the enumeration of candidate strings `w`
    /// in the maximum-repair condition.
    pub count_bound: u64,
    /// Alphabets larger than this make the enumeration too expensive; the
    /// check then returns [`UnivocalityVerdict::Unknown`] unless a syntactic
    /// fast path applies.
    pub max_alphabet: usize,
    /// Budget for the underlying repair enumerations.
    pub repair: RepairConfig,
}

impl Default for UnivocalityConfig {
    fn default() -> Self {
        UnivocalityConfig {
            count_bound: 3,
            max_alphabet: 8,
            repair: RepairConfig::default(),
        }
    }
}

/// Result of a univocality check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnivocalityVerdict<S> {
    /// The expression is univocal (exactly, via a syntactic fast path, or up
    /// to the configured bound — see the `evidence` field).
    Univocal {
        /// How univocality was established.
        evidence: UnivocalEvidence,
    },
    /// The expression is not univocal; a concrete witness is provided.
    NotUnivocal {
        /// Why the expression fails the definition.
        reason: NonUnivocalReason<S>,
    },
    /// The check was inconclusive within the configured budget.
    Unknown {
        /// Human-readable description of the budget that was exceeded.
        reason: String,
    },
}

/// How a positive univocality verdict was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnivocalEvidence {
    /// The expression is a *simple* expression `(a1|…|an)*` or `ε`.
    Simple,
    /// The expression has nested-relational shape `ℓ̃_1 … ℓ̃_m`.
    NestedRelational,
    /// `c(r) ≤ 1` (exact) and the maximum-repair condition holds for all
    /// candidate strings up to the configured count bound.
    BoundedCheck,
}

/// Concrete reason an expression is not univocal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonUnivocalReason<S> {
    /// `c(r) ≥ 2`, witnessed by a symbol with `c_a(r) = value`.
    CTooLarge {
        /// The symbol `a` with `c_a(r) ≥ 2`.
        symbol: S,
        /// The exact value of `c_a(r)`.
        value: u64,
    },
    /// Some string `w` has a non-empty `rep(w, r)` without a ⊑_w-maximum.
    NoMaximumRepair {
        /// The witnessing multiset `w`.
        witness: Multiset<S>,
        /// The (≥ 2) maximal repairs found, which are pairwise incomparable.
        maximal_repairs: Vec<Multiset<S>>,
    },
}

impl<S> UnivocalityVerdict<S> {
    /// True only for a positive verdict.
    pub fn is_univocal(&self) -> bool {
        matches!(self, UnivocalityVerdict::Univocal { .. })
    }
}

impl<S: fmt::Debug> fmt::Display for UnivocalityVerdict<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnivocalityVerdict::Univocal { evidence } => write!(f, "univocal ({evidence:?})"),
            UnivocalityVerdict::NotUnivocal { reason } => write!(f, "not univocal: {reason:?}"),
            UnivocalityVerdict::Unknown { reason } => write!(f, "unknown: {reason}"),
        }
    }
}

/// Compute `c_a(r)` exactly: the maximum number of `a`'s in an element of
/// `fixed_a(r)`, or 0 when `fixed_a(r)` is empty (Section 6.1).
///
/// The computation works on the semilinear representation of `π(r)`:
/// a linear component all of whose periods are `a`-free contributes its
/// base `a`-count whenever its "limit vector" (base plus arbitrarily many
/// copies of its periods) cannot be dominated-with-strictly-more-`a`'s by any
/// component; `c_a(r)` is the maximum such contribution. Lemma 6.8
/// guarantees finiteness.
pub fn c_sym<S: Alphabet>(r: &Regex<S>, a: &S) -> u64 {
    let alphabet = AlphabetMap::of_regex(r);
    let Some(a_idx) = alphabet.index(a) else {
        // A symbol not occurring in r: every member of π(r) has zero a's and
        // none can be extended in a, so c_a(r) = 0.
        return 0;
    };
    let image = parikh_image(r, &alphabet);
    c_sym_on_image(&image, a_idx)
}

fn period_sum(c: &LinearSet, dim: usize) -> Vec<u64> {
    let mut sum = vec![0u64; dim];
    for p in &c.periods {
        for i in 0..dim {
            sum[i] += p[i];
        }
    }
    sum
}

fn c_sym_on_image(image: &SemilinearSet, a_idx: usize) -> u64 {
    let dim = image.dim;
    let mut best = 0u64;
    for cand in &image.components {
        let cand_psum = period_sum(cand, dim);
        if cand_psum[a_idx] > 0 {
            // Every member of this component is a-extensible within the
            // component itself.
            continue;
        }
        // The limit vector of `cand`: base, with coordinates in the period
        // support unbounded. It is a-extensible iff some component can
        // dominate it with strictly more a's.
        let extensible = image.components.iter().any(|other| {
            let other_psum = period_sum(other, dim);
            let dominates = (0..dim).all(|c| {
                if cand_psum[c] > 0 {
                    other_psum[c] > 0
                } else {
                    other.base[c] >= cand.base[c] || other_psum[c] > 0
                }
            });
            let exceeds_a = other.base[a_idx] > cand.base[a_idx] || other_psum[a_idx] > 0;
            dominates && exceeds_a
        });
        if !extensible {
            best = best.max(cand.base[a_idx]);
        }
    }
    best
}

/// Compute `c(r) = max_a c_a(r)` exactly.
pub fn c_of<S: Alphabet>(r: &Regex<S>) -> u64 {
    let alphabet = AlphabetMap::of_regex(r);
    let image = parikh_image(r, &alphabet);
    (0..alphabet.len())
        .map(|i| c_sym_on_image(&image, i))
        .max()
        .unwrap_or(0)
}

/// Check whether `r` is univocal (Definition 6.9).
pub fn check_univocality<S: Alphabet>(
    r: &Regex<S>,
    config: &UnivocalityConfig,
) -> UnivocalityVerdict<S> {
    // Syntactic fast paths: simple and nested-relational expressions are
    // univocal (Section 6.1).
    if r.is_simple() {
        return UnivocalityVerdict::Univocal {
            evidence: UnivocalEvidence::Simple,
        };
    }
    if r.is_nested_relational_shape() {
        return UnivocalityVerdict::Univocal {
            evidence: UnivocalEvidence::NestedRelational,
        };
    }

    // Exact condition 1: c(r) ≤ 1.
    let alphabet = AlphabetMap::of_regex(r);
    let image = parikh_image(r, &alphabet);
    for i in 0..alphabet.len() {
        let v = c_sym_on_image(&image, i);
        if v >= 2 {
            return UnivocalityVerdict::NotUnivocal {
                reason: NonUnivocalReason::CTooLarge {
                    symbol: alphabet.symbol(i).clone(),
                    value: v,
                },
            };
        }
    }

    // Condition 2 (bounded): every w with rep(w, r) ≠ ∅ has a maximum repair.
    let symbols = alphabet.symbols().to_vec();
    if symbols.len() > config.max_alphabet {
        return UnivocalityVerdict::Unknown {
            reason: format!(
                "alphabet of size {} exceeds the configured bound {}",
                symbols.len(),
                config.max_alphabet
            ),
        };
    }
    let ctx = RepairContext::new(r, Vec::<S>::new());
    // Enumerate all multisets with per-symbol counts in 0..=count_bound
    // (skipping the empty multiset, for which rep(ε, r) has at most one
    // minimal extension anyway).
    let dim = symbols.len();
    let mut counts = vec![0u64; dim];
    loop {
        // advance odometer first so that we skip the all-zero vector exactly once
        let mut advanced = false;
        for c in counts.iter_mut() {
            if *c < config.count_bound {
                *c += 1;
                advanced = true;
                break;
            } else {
                *c = 0;
            }
        }
        if !advanced {
            break;
        }
        let w: Multiset<S> = symbols
            .iter()
            .cloned()
            .zip(counts.iter().copied())
            .filter(|(_, c)| *c > 0)
            .collect();
        let maxima = match ctx.maximal_repairs(&w, &config.repair) {
            Ok(m) => m,
            Err(e) => {
                return UnivocalityVerdict::Unknown {
                    reason: format!("repair budget exceeded while checking {w:?}: {e}"),
                }
            }
        };
        if maxima.is_empty() {
            continue; // rep(w, r) = ∅: nothing to check.
        }
        // A maximum exists iff some maximal element dominates all repairs,
        // equivalently all maximal elements are ⊑_w-equivalent.
        let all = match ctx.rep(&w, &config.repair) {
            Ok(a) => a,
            Err(e) => {
                return UnivocalityVerdict::Unknown {
                    reason: format!("repair budget exceeded while checking {w:?}: {e}"),
                }
            }
        };
        let has_maximum = all.iter().any(|cand| {
            all.iter()
                .all(|other| crate::repair::preorder_le(other, cand, &w))
        });
        if !has_maximum {
            return UnivocalityVerdict::NotUnivocal {
                reason: NonUnivocalReason::NoMaximumRepair {
                    witness: w,
                    maximal_repairs: maxima,
                },
            };
        }
    }

    UnivocalityVerdict::Univocal {
        evidence: UnivocalEvidence::BoundedCheck,
    }
}

/// Convenience wrapper: is `r` univocal under the default configuration?
///
/// Returns `false` for both negative and inconclusive verdicts; use
/// [`check_univocality`] to distinguish them.
pub fn is_univocal<S: Alphabet>(r: &Regex<S>) -> bool {
    check_univocality(r, &UnivocalityConfig::default()).is_univocal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn r(src: &str) -> Regex<String> {
        parse(src).unwrap()
    }

    #[test]
    fn c_values_of_paper_example() {
        // c_a(a | aab*) = 2, c_b(a | aab*) = 0, c(a | aab*) = 2 (Section 6.1).
        let reg = r("a|a a b*");
        assert_eq!(c_sym(&reg, &"a".to_string()), 2);
        assert_eq!(c_sym(&reg, &"b".to_string()), 0);
        assert_eq!(c_of(&reg), 2);
    }

    #[test]
    fn c_of_simple_and_starred_expressions() {
        assert_eq!(c_of(&r("(a|b)*")), 0);
        assert_eq!(c_of(&r("a*")), 0);
        assert_eq!(c_of(&r("a")), 1);
        assert_eq!(c_of(&r("a b")), 1);
        assert_eq!(c_of(&r("a a")), 2);
        assert_eq!(c_of(&r("(a b)*")), 0);
        // b c+ d* e?: every symbol appears at most once in a fixed vector.
        assert_eq!(c_of(&r("b c+ d* e?")), 1);
    }

    #[test]
    fn c_sym_of_absent_symbol_is_zero() {
        assert_eq!(c_sym(&r("a*"), &"z".to_string()), 0);
    }

    #[test]
    fn paper_univocal_examples() {
        // "all of the following are univocal: bc+d*e?, (b*|c*) and (bc)*(de)*"
        for src in ["b c+ d* e?", "(b*|c*)", "(b c)* (d e)*"] {
            let verdict = check_univocality(&r(src), &UnivocalityConfig::default());
            assert!(
                verdict.is_univocal(),
                "{src} should be univocal, got {verdict}"
            );
        }
    }

    #[test]
    fn simple_expressions_are_univocal_via_fast_path() {
        let v = check_univocality(&r("(a|b|c)*"), &UnivocalityConfig::default());
        assert_eq!(
            v,
            UnivocalityVerdict::Univocal {
                evidence: UnivocalEvidence::Simple
            }
        );
        let v2 = check_univocality(&r("eps"), &UnivocalityConfig::default());
        assert!(v2.is_univocal());
    }

    #[test]
    fn nested_relational_shapes_are_univocal() {
        let v = check_univocality(&r("title author+ year?"), &UnivocalityConfig::default());
        assert_eq!(
            v,
            UnivocalityVerdict::Univocal {
                evidence: UnivocalEvidence::NestedRelational
            }
        );
    }

    #[test]
    fn c_too_large_is_detected() {
        let v = check_univocality(&r("a|a a b*"), &UnivocalityConfig::default());
        match v {
            UnivocalityVerdict::NotUnivocal {
                reason: NonUnivocalReason::CTooLarge { symbol, value },
            } => {
                assert_eq!(symbol, "a");
                assert_eq!(value, 2);
            }
            other => panic!("expected CTooLarge, got {other}"),
        }
    }

    #[test]
    fn missing_maximum_is_detected() {
        // ab | ac: rep(a, r) = {ab, ac} has no maximum.
        let v = check_univocality(&r("(a b)|(a c)"), &UnivocalityConfig::default());
        match v {
            UnivocalityVerdict::NotUnivocal {
                reason:
                    NonUnivocalReason::NoMaximumRepair {
                        witness,
                        maximal_repairs,
                    },
            } => {
                assert_eq!(witness.get("a"), Some(&1));
                assert_eq!(maximal_repairs.len(), 2);
            }
            other => panic!("expected NoMaximumRepair, got {other}"),
        }
        assert!(!is_univocal(&r("(a b)|(a c)")));
    }

    #[test]
    fn bbc_star_is_not_univocal() {
        // c_b((bbc)*) = 0? Every vector (2n, n) is b-extensible, so c_b = 0,
        // c_c = 0. But rep(b, (bbc)*) = {bbc} has a maximum... rep(bb, (bbc)*):
        // sub-multisets {b}, {bb}; min_ext both = {bbc}; maximum exists.
        // (bbc)* is in fact univocal under the definition; the classical
        // non-univocal examples need either c(r) ≥ 2 or branching unions.
        let v = check_univocality(&r("(b b c)*"), &UnivocalityConfig::default());
        assert!(v.is_univocal(), "got {v}");
    }

    #[test]
    fn unknown_for_huge_alphabets_without_fast_path() {
        // 10 distinct symbols in a non-simple, non-nested-relational shape.
        let src = "(s0 s1)|(s2 s3)|(s4 s5)|(s6 s7)|(s8 s9)";
        let cfg = UnivocalityConfig {
            max_alphabet: 4,
            ..UnivocalityConfig::default()
        };
        let v = check_univocality(&r(src), &cfg);
        assert!(matches!(v, UnivocalityVerdict::Unknown { .. }));
    }
}
