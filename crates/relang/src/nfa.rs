//! Finite automata over element-type alphabets.
//!
//! The paper uses string automata in two places: as the horizontal languages
//! of unranked tree automata (Appendix A) and inside the sibling re-ordering
//! algorithm of Proposition 5.2, which walks an NFA for the content model
//! while testing permutation-language membership of the remaining suffix from
//! intermediate states. We therefore expose both whole-automaton matching and
//! "matching from a given state".

use crate::ast::Regex;
use crate::Alphabet;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Identifier of an NFA state.
pub type StateId = usize;

/// A nondeterministic finite automaton with ε-transitions, built by the
/// Thompson construction from a [`Regex`].
#[derive(Debug, Clone)]
pub struct Nfa<S> {
    /// Number of states; states are `0..num_states`.
    num_states: usize,
    /// ε-transitions: `eps[q]` is the set of states reachable by one ε-move.
    eps: Vec<Vec<StateId>>,
    /// Labelled transitions: `delta[q]` maps a symbol to successor states.
    delta: Vec<BTreeMap<S, Vec<StateId>>>,
    /// Initial state.
    start: StateId,
    /// Accepting states.
    accepting: BTreeSet<StateId>,
    /// Symbols occurring on transitions, sorted.
    alphabet: Vec<S>,
}

impl<S: Alphabet> Nfa<S> {
    /// Build an NFA for `regex` by the Thompson construction.
    pub fn from_regex(regex: &Regex<S>) -> Self {
        let mut b = Builder {
            eps: Vec::new(),
            delta: Vec::new(),
        };
        let (start, end) = b.build(regex);
        let alphabet: BTreeSet<S> = regex.alphabet();
        Nfa {
            num_states: b.eps.len(),
            eps: b.eps,
            delta: b.delta,
            start,
            accepting: [end].into_iter().collect(),
            alphabet: alphabet.into_iter().collect(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The accepting states.
    pub fn accepting(&self) -> &BTreeSet<StateId> {
        &self.accepting
    }

    /// The (sorted) alphabet of symbols appearing in the automaton.
    pub fn alphabet(&self) -> &[S] {
        &self.alphabet
    }

    /// ε-closure of a set of states.
    pub fn eps_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut out = states.clone();
        let mut queue: VecDeque<StateId> = states.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            for &nxt in &self.eps[q] {
                if out.insert(nxt) {
                    queue.push_back(nxt);
                }
            }
        }
        out
    }

    /// One symbol step from a set of states (without ε-closure).
    pub fn step(&self, states: &BTreeSet<StateId>, sym: &S) -> BTreeSet<StateId> {
        let mut out = BTreeSet::new();
        for &q in states {
            if let Some(nexts) = self.delta[q].get(sym) {
                out.extend(nexts.iter().copied());
            }
        }
        out
    }

    /// Does the automaton accept `word` starting from the initial state?
    pub fn matches(&self, word: &[S]) -> bool {
        self.matches_from(self.start, word)
    }

    /// Does the automaton accept `word` when started in state `q`?
    ///
    /// This realises the language `r_q` used in the proof of Proposition 5.2.
    pub fn matches_from(&self, q: StateId, word: &[S]) -> bool {
        let mut current = self.eps_closure(&[q].into_iter().collect());
        for sym in word {
            if current.is_empty() {
                return false;
            }
            let next = self.step(&current, sym);
            current = self.eps_closure(&next);
        }
        current.iter().any(|q| self.accepting.contains(q))
    }

    /// The set of states reachable from `states` (ε-closed) by reading `sym`,
    /// already ε-closed. Convenience for simulation loops.
    pub fn step_closed(&self, states: &BTreeSet<StateId>, sym: &S) -> BTreeSet<StateId> {
        self.eps_closure(&self.step(states, sym))
    }

    /// Is the language of the automaton empty?
    pub fn is_empty_language(&self) -> bool {
        // BFS over states reachable from the start; empty iff no accepting
        // state is reachable.
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::new();
        seen[self.start] = true;
        queue.push_back(self.start);
        while let Some(q) = queue.pop_front() {
            if self.accepting.contains(&q) {
                return false;
            }
            for &nxt in &self.eps[q] {
                if !seen[nxt] {
                    seen[nxt] = true;
                    queue.push_back(nxt);
                }
            }
            for nexts in self.delta[q].values() {
                for &nxt in nexts {
                    if !seen[nxt] {
                        seen[nxt] = true;
                        queue.push_back(nxt);
                    }
                }
            }
        }
        true
    }

    /// A shortest word in the language, if any.
    ///
    /// Used to build minimal conforming trees and witnesses for DTD
    /// consistency (Lemma 2.2) and the repair machinery.
    pub fn shortest_word(&self) -> Option<Vec<S>> {
        // BFS over ε-closed state sets.
        let start = self.eps_closure(&[self.start].into_iter().collect());
        if start.iter().any(|q| self.accepting.contains(q)) {
            return Some(Vec::new());
        }
        let mut seen: BTreeSet<BTreeSet<StateId>> = [start.clone()].into_iter().collect();
        let mut queue: VecDeque<(BTreeSet<StateId>, Vec<S>)> = VecDeque::new();
        queue.push_back((start, Vec::new()));
        while let Some((states, word)) = queue.pop_front() {
            for sym in &self.alphabet {
                let next = self.step_closed(&states, sym);
                if next.is_empty() || seen.contains(&next) {
                    continue;
                }
                let mut w = word.clone();
                w.push(sym.clone());
                if next.iter().any(|q| self.accepting.contains(q)) {
                    return Some(w);
                }
                seen.insert(next.clone());
                queue.push_back((next, w));
            }
        }
        None
    }

    /// Enumerate up to `limit` words of the language in length-lexicographic
    /// order. Useful for tests and brute-force cross-checks.
    pub fn enumerate_words(&self, limit: usize, max_len: usize) -> Vec<Vec<S>> {
        let mut out = Vec::new();
        let start = self.eps_closure(&[self.start].into_iter().collect());
        let mut layer: Vec<(BTreeSet<StateId>, Vec<S>)> = vec![(start, Vec::new())];
        for _len in 0..=max_len {
            for (states, word) in &layer {
                if out.len() >= limit {
                    return out;
                }
                if states.iter().any(|q| self.accepting.contains(q)) {
                    out.push(word.clone());
                }
            }
            let mut next_layer = Vec::new();
            for (states, word) in &layer {
                for sym in &self.alphabet {
                    let next = self.step_closed(states, sym);
                    if next.is_empty() {
                        continue;
                    }
                    let mut w = word.clone();
                    w.push(sym.clone());
                    next_layer.push((next, w));
                }
            }
            layer = next_layer;
            if layer.is_empty() {
                break;
            }
        }
        out
    }

    /// Build the subset-construction DFA (total over this NFA's alphabet).
    pub fn to_dfa(&self) -> Dfa<S> {
        Dfa::from_nfa(self)
    }
}

struct Builder<S> {
    eps: Vec<Vec<StateId>>,
    delta: Vec<BTreeMap<S, Vec<StateId>>>,
}

impl<S: Alphabet> Builder<S> {
    fn new_state(&mut self) -> StateId {
        self.eps.push(Vec::new());
        self.delta.push(BTreeMap::new());
        self.eps.len() - 1
    }

    /// Returns (start, accept) fragment states.
    fn build(&mut self, r: &Regex<S>) -> (StateId, StateId) {
        match r {
            Regex::Empty => {
                let s = self.new_state();
                let e = self.new_state();
                (s, e)
            }
            Regex::Epsilon => {
                let s = self.new_state();
                let e = self.new_state();
                self.eps[s].push(e);
                (s, e)
            }
            Regex::Symbol(a) => {
                let s = self.new_state();
                let e = self.new_state();
                self.delta[s].entry(a.clone()).or_default().push(e);
                (s, e)
            }
            Regex::Concat(x, y) => {
                let (s1, e1) = self.build(x);
                let (s2, e2) = self.build(y);
                self.eps[e1].push(s2);
                (s1, e2)
            }
            Regex::Alt(x, y) => {
                let s = self.new_state();
                let e = self.new_state();
                let (s1, e1) = self.build(x);
                let (s2, e2) = self.build(y);
                self.eps[s].push(s1);
                self.eps[s].push(s2);
                self.eps[e1].push(e);
                self.eps[e2].push(e);
                (s, e)
            }
            Regex::Star(x) => {
                let s = self.new_state();
                let e = self.new_state();
                let (s1, e1) = self.build(x);
                self.eps[s].push(s1);
                self.eps[s].push(e);
                self.eps[e1].push(s1);
                self.eps[e1].push(e);
                (s, e)
            }
            Regex::Plus(x) => {
                let (s1, e1) = self.build(x);
                let e = self.new_state();
                self.eps[e1].push(s1);
                self.eps[e1].push(e);
                (s1, e)
            }
            Regex::Opt(x) => {
                let s = self.new_state();
                let e = self.new_state();
                let (s1, e1) = self.build(x);
                self.eps[s].push(s1);
                self.eps[s].push(e);
                self.eps[e1].push(e);
                (s, e)
            }
        }
    }
}

/// A deterministic finite automaton obtained by the subset construction.
///
/// The DFA is *total* over the alphabet of the source NFA: there is an
/// explicit dead state, so complementation is just flipping accepting states.
#[derive(Debug, Clone)]
pub struct Dfa<S> {
    /// Transition table: `table[q]` maps an alphabet index to a successor.
    table: Vec<Vec<usize>>,
    /// Sorted alphabet; symbols are addressed by index.
    alphabet: Vec<S>,
    /// Initial state.
    start: usize,
    /// Accepting states.
    accepting: Vec<bool>,
}

impl<S: Alphabet> Dfa<S> {
    /// Subset construction from an NFA.
    ///
    /// This is the fast path: the NFA is first compiled to bit-parallel form
    /// ([`crate::bitset::BitsetNfa`]) and the construction hashes `u64`-block
    /// state masks instead of ordering `BTreeSet<StateId>` keys. The original
    /// tree-based construction is kept as [`Dfa::from_nfa_reference`] and the
    /// two are differential-tested against each other.
    pub fn from_nfa(nfa: &Nfa<S>) -> Self {
        crate::bitset::BitsetNfa::from_nfa(nfa).to_dfa()
    }

    /// Reference subset construction over `BTreeSet` state sets (the original
    /// implementation, kept for differential testing of the bitset path).
    pub fn from_nfa_reference(nfa: &Nfa<S>) -> Self {
        let alphabet = nfa.alphabet().to_vec();
        let start_set = nfa.eps_closure(&[nfa.start()].into_iter().collect());
        let mut index: BTreeMap<BTreeSet<StateId>, usize> = BTreeMap::new();
        let mut sets: Vec<BTreeSet<StateId>> = Vec::new();
        let mut table: Vec<Vec<usize>> = Vec::new();

        index.insert(start_set.clone(), 0);
        sets.push(start_set);
        let mut i = 0;
        while i < sets.len() {
            let current = sets[i].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for sym in &alphabet {
                let next = nfa.step_closed(&current, sym);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = sets.len();
                        index.insert(next.clone(), id);
                        sets.push(next);
                        id
                    }
                };
                row.push(id);
            }
            table.push(row);
            i += 1;
        }
        let accepting = sets
            .iter()
            .map(|s| s.iter().any(|q| nfa.accepting().contains(q)))
            .collect();
        Dfa {
            table,
            alphabet,
            start: 0,
            accepting,
        }
    }

    /// Assemble a DFA from an explicit transition table (used by the bitset
    /// subset construction; `table[q][a]` must be a valid state index).
    pub(crate) fn from_parts(
        table: Vec<Vec<usize>>,
        alphabet: Vec<S>,
        start: usize,
        accepting: Vec<bool>,
    ) -> Self {
        debug_assert_eq!(table.len(), accepting.len());
        debug_assert!(table.iter().all(|row| row.len() == alphabet.len()));
        Dfa {
            table,
            alphabet,
            start,
            accepting,
        }
    }

    /// The raw transition table: `table[q]` maps each alphabet index to the
    /// successor state. Exposed so downstream crates can re-index the DFA
    /// over a dense interned alphabet (see `xdx-xmltree`'s `CompiledDtd`).
    pub fn table(&self) -> &[Vec<usize>] {
        &self.table
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.table.len()
    }

    /// The sorted alphabet.
    pub fn alphabet(&self) -> &[S] {
        &self.alphabet
    }

    /// The initial state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Is state `q` accepting?
    pub fn is_accepting(&self, q: usize) -> bool {
        self.accepting[q]
    }

    /// Deterministic step; symbols outside the alphabet go to a dead state
    /// conceptually (`None`).
    pub fn step(&self, q: usize, sym: &S) -> Option<usize> {
        let idx = self.alphabet.binary_search(sym).ok()?;
        Some(self.table[q][idx])
    }

    /// Does the DFA accept `word`?
    pub fn matches(&self, word: &[S]) -> bool {
        let mut q = self.start;
        for sym in word {
            match self.step(q, sym) {
                Some(n) => q = n,
                None => return false,
            }
        }
        self.accepting[q]
    }

    /// Complement the DFA (flip accepting states). The result accepts exactly
    /// the words over this DFA's alphabet not accepted before.
    pub fn complement(&self) -> Dfa<S> {
        Dfa {
            table: self.table.clone(),
            alphabet: self.alphabet.clone(),
            start: self.start,
            accepting: self.accepting.iter().map(|b| !b).collect(),
        }
    }

    /// Is the language of the DFA empty?
    pub fn is_empty_language(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        seen[self.start] = true;
        queue.push_back(self.start);
        while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                return false;
            }
            for &n in &self.table[q] {
                if !seen[n] {
                    seen[n] = true;
                    queue.push_back(n);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa(src: &str) -> Nfa<String> {
        Nfa::from_regex(&parse(src).unwrap())
    }

    fn w(src: &str) -> Vec<String> {
        src.split_whitespace().map(|s| s.to_string()).collect()
    }

    #[test]
    fn matches_basic() {
        let a = nfa("(a|b)* c");
        assert!(a.matches(&w("c")));
        assert!(a.matches(&w("a b a c")));
        assert!(!a.matches(&w("a b")));
        assert!(!a.matches(&w("c c")));
    }

    #[test]
    fn matches_plus_opt() {
        let a = nfa("b c+ d* e?");
        assert!(a.matches(&w("b c")));
        assert!(a.matches(&w("b c c d d e")));
        assert!(!a.matches(&w("b")));
        assert!(!a.matches(&w("b c e e")));
    }

    #[test]
    fn empty_language_detection() {
        let a = Nfa::from_regex(&Regex::<String>::Empty);
        assert!(a.is_empty_language());
        let b = nfa("a*");
        assert!(!b.is_empty_language());
        let c = Nfa::from_regex(&Regex::concat(Regex::Symbol("a".to_string()), Regex::Empty));
        assert!(c.is_empty_language());
    }

    #[test]
    fn shortest_word() {
        assert_eq!(nfa("a*").shortest_word(), Some(vec![]));
        assert_eq!(nfa("a+ b").shortest_word(), Some(w("a b")));
        assert_eq!(nfa("(a a a)|(b)").shortest_word(), Some(w("b")));
        assert_eq!(
            Nfa::from_regex(&Regex::<String>::Empty).shortest_word(),
            None
        );
    }

    #[test]
    fn matches_from_intermediate_state() {
        // For "a b", after consuming 'a' from the start closure we should be
        // able to find a state from which "b" alone is accepted.
        let a = nfa("a b");
        let start = a.eps_closure(&[a.start()].into_iter().collect());
        let after_a = a.step_closed(&start, &"a".to_string());
        assert!(after_a.iter().any(|&q| a.matches_from(q, &w("b"))));
        assert!(!after_a.iter().any(|&q| a.matches_from(q, &w("a"))));
    }

    #[test]
    fn dfa_agrees_with_nfa() {
        for src in ["(a|b)* c", "b c+ d* e?", "(b c)* (d e)*", "a|a a b*"] {
            let n = nfa(src);
            let d = n.to_dfa();
            for word in n.enumerate_words(50, 6) {
                assert!(d.matches(&word), "{src} should accept {word:?}");
            }
            // words the NFA rejects should be rejected by the DFA too
            let alphabet: Vec<String> = n.alphabet().to_vec();
            let mut all = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for word in &all {
                    for s in &alphabet {
                        let mut nw = word.clone();
                        nw.push(s.clone());
                        next.push(nw);
                    }
                }
                all.extend(next);
            }
            for word in all {
                assert_eq!(n.matches(&word), d.matches(&word), "{src} on {word:?}");
            }
        }
    }

    #[test]
    fn dfa_complement() {
        let n = nfa("(a b)*");
        let d = n.to_dfa();
        let c = d.complement();
        assert!(d.matches(&w("a b a b")));
        assert!(!c.matches(&w("a b a b")));
        assert!(!d.matches(&w("a a")));
        assert!(c.matches(&w("a a")));
        assert!(!c.is_empty_language());
    }

    #[test]
    fn enumerate_words_orders_by_length() {
        let n = nfa("a b | a");
        let words = n.enumerate_words(10, 4);
        assert!(words.contains(&w("a")));
        assert!(words.contains(&w("a b")));
        assert_eq!(words.len(), 2);
    }
}
