//! A small textual syntax for regular expressions over element-type names.
//!
//! The syntax is the usual one used in DTD content models throughout the
//! paper:
//!
//! ```text
//! expr    ::= term ('|' term)*
//! term    ::= factor+
//! factor  ::= atom ('*' | '+' | '?')*
//! atom    ::= IDENT | 'ε' | 'eps' | '#eps' | '(' expr ')'
//! IDENT   ::= [A-Za-z_@][A-Za-z0-9_\-.]*
//! ```
//!
//! Whitespace separates identifiers and is otherwise ignored, so
//! `"book* author"` and `"(writer)* work?"` parse as expected. Commas are
//! accepted as concatenation separators for DTD-style rules like
//! `"title, author+"`.

use crate::ast::Regex;
use std::fmt;

/// Error raised by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Hard cap on parenthesis-nesting depth. The parser is recursive-descent,
/// so without a cap a hostile `((((…` input would overflow the parsing
/// thread's stack instead of returning an error. Far beyond any content
/// model the paper's constructions (or a sane DTD) produce.
pub const MAX_REGEX_DEPTH: usize = 512;

/// Parse a regular expression over string symbols.
pub fn parse(input: &str) -> Result<Regex<String>, ParseError> {
    let mut p = Parser {
        chars: input.char_indices().peekable(),
        input,
    };
    let e = p.parse_alt(0)?;
    p.skip_ws();
    if let Some(&(pos, c)) = p.chars.peek() {
        return Err(ParseError {
            position: pos,
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(e)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&(_, c)) = self.chars.peek() {
            if c.is_whitespace() || c == ',' {
                self.chars.next();
            } else {
                break;
            }
        }
    }

    fn parse_alt(&mut self, depth: usize) -> Result<Regex<String>, ParseError> {
        let mut terms = vec![self.parse_concat(depth)?];
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&(_, '|')) => {
                    self.chars.next();
                    terms.push(self.parse_concat(depth)?);
                }
                _ => break,
            }
        }
        Ok(Regex::union(terms))
    }

    fn parse_concat(&mut self, depth: usize) -> Result<Regex<String>, ParseError> {
        let mut factors = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&(_, c)) if c == ')' || c == '|' => break,
                None => break,
                _ => factors.push(self.parse_postfix(depth)?),
            }
        }
        if factors.is_empty() {
            // An empty term denotes ε (e.g. the right branch of "a|").
            Ok(Regex::Epsilon)
        } else {
            Ok(Regex::seq(factors))
        }
    }

    fn parse_postfix(&mut self, depth: usize) -> Result<Regex<String>, ParseError> {
        let mut base = self.parse_atom(depth)?;
        loop {
            match self.chars.peek() {
                Some(&(_, '*')) => {
                    self.chars.next();
                    base = Regex::star(base);
                }
                Some(&(_, '+')) => {
                    self.chars.next();
                    base = Regex::plus(base);
                }
                Some(&(_, '?')) => {
                    self.chars.next();
                    base = Regex::opt(base);
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn parse_atom(&mut self, depth: usize) -> Result<Regex<String>, ParseError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            None => Err(ParseError {
                position: self.input.len(),
                message: "unexpected end of input".to_string(),
            }),
            Some((pos, '(')) => {
                if depth >= MAX_REGEX_DEPTH {
                    return Err(ParseError {
                        position: pos,
                        message: format!(
                            "expression exceeds the nesting-depth cap of {MAX_REGEX_DEPTH}"
                        ),
                    });
                }
                self.chars.next();
                let inner = self.parse_alt(depth + 1)?;
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ')')) => Ok(inner),
                    _ => Err(ParseError {
                        position: pos,
                        message: "unclosed parenthesis".to_string(),
                    }),
                }
            }
            Some((_, 'ε')) => {
                self.chars.next();
                Ok(Regex::Epsilon)
            }
            Some((pos, c)) if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(&(_, c)) = self.chars.peek() {
                    if is_ident_continue(c) {
                        ident.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                if ident == "eps" || ident == "EMPTY" {
                    Ok(Regex::Epsilon)
                } else if ident.is_empty() {
                    Err(ParseError {
                        position: pos,
                        message: "expected identifier".to_string(),
                    })
                } else {
                    Ok(Regex::Symbol(ident))
                }
            }
            Some((pos, c)) => Err(ParseError {
                position: pos,
                message: format!("unexpected character {c:?}"),
            }),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == '@' || c == '#'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '@' || c == '#'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Regex;

    fn s(x: &str) -> Regex<String> {
        Regex::Symbol(x.to_string())
    }

    #[test]
    fn parses_basic_forms() {
        assert_eq!(parse("a").unwrap(), s("a"));
        assert_eq!(parse("a b").unwrap(), Regex::concat(s("a"), s("b")));
        assert_eq!(parse("a|b").unwrap(), Regex::alt(s("a"), s("b")));
        assert_eq!(parse("a*").unwrap(), Regex::star(s("a")));
        assert_eq!(parse("a+").unwrap(), Regex::plus(s("a")));
        assert_eq!(parse("a?").unwrap(), Regex::opt(s("a")));
        assert_eq!(parse("eps").unwrap(), Regex::Epsilon);
        assert_eq!(parse("ε").unwrap(), Regex::Epsilon);
        assert_eq!(parse("EMPTY").unwrap(), Regex::Epsilon);
    }

    #[test]
    fn parses_dtd_style_rules() {
        // db → book*     book → author*
        assert_eq!(parse("book*").unwrap(), Regex::star(s("book")));
        // nested relational: title, author+, year?
        let r = parse("title, author+, year?").unwrap();
        assert_eq!(
            r,
            Regex::seq([s("title"), Regex::plus(s("author")), Regex::opt(s("year"))])
        );
    }

    #[test]
    fn precedence_and_grouping() {
        // a|b c*  ==  a | (b c*)
        let r = parse("a|b c*").unwrap();
        assert_eq!(
            r,
            Regex::alt(s("a"), Regex::concat(s("b"), Regex::star(s("c"))))
        );
        // (a|b)* c
        let r2 = parse("(a|b)* c").unwrap();
        assert_eq!(
            r2,
            Regex::concat(Regex::star(Regex::alt(s("a"), s("b"))), s("c"))
        );
        // (bc)*(de)* — the univocal example from Section 6.1
        let r3 = parse("(b c)*(d e)*").unwrap();
        assert_eq!(
            r3,
            Regex::concat(
                Regex::star(Regex::concat(s("b"), s("c"))),
                Regex::star(Regex::concat(s("d"), s("e")))
            )
        );
    }

    #[test]
    fn double_postfix() {
        assert_eq!(parse("a*?").unwrap(), Regex::opt(Regex::star(s("a"))));
    }

    #[test]
    fn errors_are_reported_with_positions() {
        let e = parse("a )").unwrap_err();
        assert!(e.position >= 2);
        assert!(parse("(a").is_err());
        assert!(parse("").is_err() || parse("").unwrap() == Regex::Epsilon);
    }

    #[test]
    fn paren_bombs_error_instead_of_overflowing() {
        let bomb = "(".repeat(100_000) + "a" + &")".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting-depth"), "{}", err.message);
        let deep = "(".repeat(MAX_REGEX_DEPTH - 1) + "a" + &")".repeat(MAX_REGEX_DEPTH - 1);
        assert!(parse(&deep).is_ok());
    }

    #[test]
    fn display_then_reparse_is_identity_on_examples() {
        for src in [
            "b c+ d* e?",
            "(b*|c*)",
            "(b c)* (d e)*",
            "a|a a b*",
            "(a b c)*",
            "(writer)*",
        ] {
            let r = parse(src).unwrap();
            let printed = format!("{r}");
            let r2 = parse(&printed).unwrap();
            assert_eq!(r, r2, "round-trip failed for {src}: printed as {printed}");
        }
    }
}
