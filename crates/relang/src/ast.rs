//! Regular-expression AST over element types.
//!
//! The grammar follows Section 2 of the paper:
//!
//! ```text
//! e ::= ε | ℓ (ℓ ∈ E) | e|e | ee | e*
//! ```
//!
//! with the standard shorthands `e+ = ee*` and `e? = ε|e`. We additionally
//! keep an explicit `∅` (empty language) constructor because the
//! DTD-trimming construction of Lemma 2.2 introduces it as an intermediate
//! form before the rewriting function `ρ` eliminates it again.

use crate::Alphabet;
use std::collections::BTreeSet;
use std::fmt;

/// A regular expression over symbols of type `S`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regex<S> {
    /// The empty language `∅` (matches nothing).
    Empty,
    /// The empty string `ε`.
    Epsilon,
    /// A single symbol (element type).
    Symbol(S),
    /// Concatenation `e1 e2`.
    Concat(Box<Regex<S>>, Box<Regex<S>>),
    /// Union (alternation) `e1 | e2`.
    Alt(Box<Regex<S>>, Box<Regex<S>>),
    /// Kleene star `e*`.
    Star(Box<Regex<S>>),
    /// One-or-more `e+` (shorthand for `e e*`).
    Plus(Box<Regex<S>>),
    /// Optional `e?` (shorthand for `ε | e`).
    Opt(Box<Regex<S>>),
}

impl<S: Alphabet> Regex<S> {
    /// The empty-string expression `ε`.
    pub fn epsilon() -> Self {
        Regex::Epsilon
    }

    /// The empty-language expression `∅`.
    pub fn empty() -> Self {
        Regex::Empty
    }

    /// A single-symbol expression.
    pub fn sym(s: impl Into<S>) -> Self {
        Regex::Symbol(s.into())
    }

    /// Concatenation of two expressions.
    pub fn concat(a: Regex<S>, b: Regex<S>) -> Self {
        Regex::Concat(Box::new(a), Box::new(b))
    }

    /// Concatenation of an arbitrary sequence of expressions.
    ///
    /// Returns `ε` for the empty sequence.
    pub fn seq(items: impl IntoIterator<Item = Regex<S>>) -> Self {
        let mut items: Vec<_> = items.into_iter().collect();
        match items.len() {
            0 => Regex::Epsilon,
            1 => items.pop().expect("len checked"),
            _ => {
                let mut it = items.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, Regex::concat)
            }
        }
    }

    /// Union of two expressions.
    pub fn alt(a: Regex<S>, b: Regex<S>) -> Self {
        Regex::Alt(Box::new(a), Box::new(b))
    }

    /// Union of an arbitrary non-empty sequence of expressions.
    ///
    /// Returns `∅` for the empty sequence (the neutral element of union).
    pub fn union(items: impl IntoIterator<Item = Regex<S>>) -> Self {
        let mut items: Vec<_> = items.into_iter().collect();
        match items.len() {
            0 => Regex::Empty,
            1 => items.pop().expect("len checked"),
            _ => {
                let mut it = items.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, Regex::alt)
            }
        }
    }

    /// Kleene star.
    pub fn star(a: Regex<S>) -> Self {
        Regex::Star(Box::new(a))
    }

    /// One-or-more.
    pub fn plus(a: Regex<S>) -> Self {
        Regex::Plus(Box::new(a))
    }

    /// Optional.
    pub fn opt(a: Regex<S>) -> Self {
        Regex::Opt(Box::new(a))
    }

    /// Map the symbols of the expression through `f`, preserving structure.
    pub fn map<T: Alphabet>(&self, f: &mut impl FnMut(&S) -> T) -> Regex<T> {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Symbol(s) => Regex::Symbol(f(s)),
            Regex::Concat(a, b) => Regex::Concat(Box::new(a.map(f)), Box::new(b.map(f))),
            Regex::Alt(a, b) => Regex::Alt(Box::new(a.map(f)), Box::new(b.map(f))),
            Regex::Star(a) => Regex::Star(Box::new(a.map(f))),
            Regex::Plus(a) => Regex::Plus(Box::new(a.map(f))),
            Regex::Opt(a) => Regex::Opt(Box::new(a.map(f))),
        }
    }

    /// The set of symbols mentioned in the expression (`alph(r)` in the paper).
    pub fn alphabet(&self) -> BTreeSet<S> {
        let mut out = BTreeSet::new();
        self.collect_alphabet(&mut out);
        out
    }

    fn collect_alphabet(&self, out: &mut BTreeSet<S>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Symbol(s) => {
                out.insert(s.clone());
            }
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_alphabet(out);
                b.collect_alphabet(out);
            }
            Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => a.collect_alphabet(out),
        }
    }

    /// The size measure `‖r‖` of Lemma 5.8: number of symbol occurrences
    /// (star does not multiply).
    pub fn norm(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon => 0,
            Regex::Symbol(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.norm() + b.norm(),
            Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => a.norm(),
        }
    }

    /// Total number of AST nodes; used as a generic "input size" in benches.
    pub fn len(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => 1 + a.len() + b.len(),
            Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => 1 + a.len(),
        }
    }

    /// True when the AST is a single `ε` node. (Provided to satisfy the
    /// `len`/`is_empty` convention; note this is *not* language emptiness —
    /// see [`Regex::is_empty_language`].)
    pub fn is_empty(&self) -> bool {
        matches!(self, Regex::Epsilon)
    }

    /// Does the expression accept the empty string?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Symbol(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
            Regex::Plus(a) => a.nullable(),
        }
    }

    /// Is the denoted language empty (`L(r) = ∅`)?
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Symbol(_) | Regex::Star(_) | Regex::Opt(_) => false,
            Regex::Concat(a, b) => a.is_empty_language() || b.is_empty_language(),
            Regex::Alt(a, b) => a.is_empty_language() && b.is_empty_language(),
            Regex::Plus(a) => a.is_empty_language(),
        }
    }

    /// Is this a *simple* regular expression in the sense of Section 5.3:
    /// either `ε` or `(a1|a2|…|an)*` with pairwise-distinct symbols?
    pub fn is_simple(&self) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Star(inner) => {
                let mut syms = Vec::new();
                if !collect_flat_union_of_symbols(inner, &mut syms) {
                    return false;
                }
                let set: BTreeSet<_> = syms.iter().collect();
                set.len() == syms.len() && !syms.is_empty()
            }
            _ => false,
        }
    }

    /// Is this expression of *nested-relational shape* (Section 4): a
    /// concatenation `ℓ̃_0 … ℓ̃_m` where each `ℓ̃_i` is one of `ℓ`, `ℓ*`,
    /// `ℓ+`, `ℓ?` and all the `ℓ_i` are pairwise distinct?
    ///
    /// (A DTD is nested-relational when additionally it is non-recursive;
    /// that global condition lives in the DTD layer.)
    pub fn is_nested_relational_shape(&self) -> bool {
        self.nested_relational_factors().is_some()
    }

    /// Decompose a nested-relational-shaped expression into its factors.
    ///
    /// Returns `None` when the expression is not of that shape. `ε` decomposes
    /// into an empty factor list.
    pub fn nested_relational_factors(&self) -> Option<Vec<NestedFactor<S>>> {
        let mut factors = Vec::new();
        if !collect_nested_factors(self, &mut factors) {
            return None;
        }
        let set: BTreeSet<_> = factors.iter().map(|f| f.symbol.clone()).collect();
        if set.len() != factors.len() {
            return None;
        }
        Some(factors)
    }

    /// Rewrite this expression by replacing symbols in `dead` by `∅` and then
    /// applying the simplification function `ρ` from the proof of Lemma 2.2,
    /// which eliminates `∅` again (returning `Regex::Empty` only if the whole
    /// language became empty).
    pub fn eliminate_symbols(&self, dead: &BTreeSet<S>) -> Regex<S> {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Symbol(s) => {
                if dead.contains(s) {
                    Regex::Empty
                } else {
                    Regex::Symbol(s.clone())
                }
            }
            Regex::Concat(a, b) => {
                let (ra, rb) = (a.eliminate_symbols(dead), b.eliminate_symbols(dead));
                if matches!(ra, Regex::Empty) || matches!(rb, Regex::Empty) {
                    Regex::Empty
                } else {
                    Regex::Concat(Box::new(ra), Box::new(rb))
                }
            }
            Regex::Alt(a, b) => {
                let (ra, rb) = (a.eliminate_symbols(dead), b.eliminate_symbols(dead));
                match (matches!(ra, Regex::Empty), matches!(rb, Regex::Empty)) {
                    (false, false) => Regex::Alt(Box::new(ra), Box::new(rb)),
                    (false, true) => ra,
                    (true, false) => rb,
                    (true, true) => Regex::Empty,
                }
            }
            Regex::Star(a) => {
                let ra = a.eliminate_symbols(dead);
                if matches!(ra, Regex::Empty) {
                    // ρ(r*) = ε when ρ(r) = ∅
                    Regex::Epsilon
                } else {
                    Regex::Star(Box::new(ra))
                }
            }
            Regex::Plus(a) => {
                let ra = a.eliminate_symbols(dead);
                if matches!(ra, Regex::Empty) {
                    Regex::Empty
                } else {
                    Regex::Plus(Box::new(ra))
                }
            }
            Regex::Opt(a) => {
                let ra = a.eliminate_symbols(dead);
                if matches!(ra, Regex::Empty) {
                    Regex::Epsilon
                } else {
                    Regex::Opt(Box::new(ra))
                }
            }
        }
    }
}

/// A factor `ℓ̃` of a nested-relational content model: a symbol with a
/// multiplicity annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedFactor<S> {
    /// The element type of the factor.
    pub symbol: S,
    /// The multiplicity of the factor.
    pub multiplicity: Multiplicity,
}

/// The four multiplicities allowed in nested-relational DTDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multiplicity {
    /// Exactly one (`ℓ`).
    One,
    /// Zero or one (`ℓ?`).
    Optional,
    /// One or more (`ℓ+`).
    Plus,
    /// Zero or more (`ℓ*`).
    Star,
}

impl Multiplicity {
    /// Minimum number of occurrences permitted by the multiplicity.
    pub fn min(&self) -> usize {
        match self {
            Multiplicity::One | Multiplicity::Plus => 1,
            Multiplicity::Optional | Multiplicity::Star => 0,
        }
    }

    /// Whether more than one occurrence is permitted.
    pub fn unbounded(&self) -> bool {
        matches!(self, Multiplicity::Plus | Multiplicity::Star)
    }
}

fn collect_flat_union_of_symbols<S: Alphabet>(r: &Regex<S>, out: &mut Vec<S>) -> bool {
    match r {
        Regex::Symbol(s) => {
            out.push(s.clone());
            true
        }
        Regex::Alt(a, b) => {
            collect_flat_union_of_symbols(a, out) && collect_flat_union_of_symbols(b, out)
        }
        _ => false,
    }
}

fn collect_nested_factors<S: Alphabet>(r: &Regex<S>, out: &mut Vec<NestedFactor<S>>) -> bool {
    match r {
        Regex::Epsilon => true,
        Regex::Symbol(s) => {
            out.push(NestedFactor {
                symbol: s.clone(),
                multiplicity: Multiplicity::One,
            });
            true
        }
        Regex::Star(inner) => match inner.as_ref() {
            Regex::Symbol(s) => {
                out.push(NestedFactor {
                    symbol: s.clone(),
                    multiplicity: Multiplicity::Star,
                });
                true
            }
            _ => false,
        },
        Regex::Plus(inner) => match inner.as_ref() {
            Regex::Symbol(s) => {
                out.push(NestedFactor {
                    symbol: s.clone(),
                    multiplicity: Multiplicity::Plus,
                });
                true
            }
            _ => false,
        },
        Regex::Opt(inner) => match inner.as_ref() {
            Regex::Symbol(s) => {
                out.push(NestedFactor {
                    symbol: s.clone(),
                    multiplicity: Multiplicity::Optional,
                });
                true
            }
            _ => false,
        },
        // `ℓ? = ε|ℓ` written explicitly as a union also counts.
        Regex::Alt(a, b) => match (a.as_ref(), b.as_ref()) {
            (Regex::Epsilon, Regex::Symbol(s)) | (Regex::Symbol(s), Regex::Epsilon) => {
                out.push(NestedFactor {
                    symbol: s.clone(),
                    multiplicity: Multiplicity::Optional,
                });
                true
            }
            _ => false,
        },
        Regex::Concat(a, b) => collect_nested_factors(a, out) && collect_nested_factors(b, out),
        Regex::Empty => false,
    }
}

impl<S: fmt::Display> fmt::Display for Regex<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: Alt < Concat < postfix.
        fn go<S: fmt::Display>(r: &Regex<S>, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match r {
                Regex::Empty => write!(f, "∅"),
                Regex::Epsilon => write!(f, "ε"),
                Regex::Symbol(s) => write!(f, "{s}"),
                Regex::Alt(a, b) => {
                    let need = prec > 0;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 0)?;
                    write!(f, "|")?;
                    go(b, f, 0)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Concat(a, b) => {
                    let need = prec > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " ")?;
                    go(b, f, 1)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Star(a) => {
                    go(a, f, 2)?;
                    write!(f, "*")
                }
                Regex::Plus(a) => {
                    go(a, f, 2)?;
                    write!(f, "+")
                }
                Regex::Opt(a) => {
                    go(a, f, 2)?;
                    write!(f, "?")
                }
            }
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type R = Regex<String>;

    fn s(x: &str) -> R {
        Regex::Symbol(x.to_string())
    }

    #[test]
    fn alphabet_and_norm() {
        let r = R::concat(R::star(R::alt(s("a"), s("b"))), R::plus(s("a")));
        let alph: Vec<_> = r.alphabet().into_iter().collect();
        assert_eq!(alph, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(r.norm(), 3);
    }

    #[test]
    fn nullable() {
        assert!(R::epsilon().nullable());
        assert!(!s("a").nullable());
        assert!(R::star(s("a")).nullable());
        assert!(!R::plus(s("a")).nullable());
        assert!(R::opt(s("a")).nullable());
        assert!(R::concat(R::star(s("a")), R::opt(s("b"))).nullable());
        assert!(!R::concat(R::star(s("a")), s("b")).nullable());
        assert!(R::alt(s("a"), R::epsilon()).nullable());
    }

    #[test]
    fn empty_language() {
        assert!(R::empty().is_empty_language());
        assert!(!R::epsilon().is_empty_language());
        assert!(R::concat(s("a"), R::empty()).is_empty_language());
        assert!(!R::alt(s("a"), R::empty()).is_empty_language());
        assert!(!R::star(R::empty()).is_empty_language());
    }

    #[test]
    fn simple_expressions() {
        assert!(R::epsilon().is_simple());
        assert!(R::star(s("a")).is_simple());
        assert!(R::star(R::alt(s("a"), R::alt(s("b"), s("c")))).is_simple());
        // repeated symbol is not simple
        assert!(!R::star(R::alt(s("a"), s("a"))).is_simple());
        // anything not of the (a1|…|an)* shape is not simple
        assert!(!R::concat(R::star(s("a")), R::star(s("b"))).is_simple());
        assert!(!s("a").is_simple());
    }

    #[test]
    fn nested_relational_shape() {
        // b c+ d* e?  — the example from Section 6.1
        let r = R::seq([s("b"), R::plus(s("c")), R::star(s("d")), R::opt(s("e"))]);
        let factors = r.nested_relational_factors().expect("nested-relational");
        assert_eq!(factors.len(), 4);
        assert_eq!(factors[1].multiplicity, Multiplicity::Plus);
        assert_eq!(factors[3].multiplicity, Multiplicity::Optional);

        // duplicate symbols break the shape
        let bad = R::seq([s("a"), R::star(s("a"))]);
        assert!(!bad.is_nested_relational_shape());

        // (bc)* is not nested-relational
        let bad2 = R::star(R::concat(s("b"), s("c")));
        assert!(!bad2.is_nested_relational_shape());

        // ε is nested-relational with zero factors
        assert_eq!(R::epsilon().nested_relational_factors().unwrap().len(), 0);
    }

    #[test]
    fn eliminate_symbols_follows_lemma_2_2() {
        // r = (a|b) c*, eliminating b gives a c*; eliminating a and b gives ∅.
        let r = R::concat(R::alt(s("a"), s("b")), R::star(s("c")));
        let dead: BTreeSet<String> = ["b".to_string()].into_iter().collect();
        let r2 = r.eliminate_symbols(&dead);
        assert_eq!(r2, R::concat(s("a"), R::star(s("c"))));

        let dead2: BTreeSet<String> = ["a".to_string(), "b".to_string()].into_iter().collect();
        assert!(matches!(r.eliminate_symbols(&dead2), Regex::Empty));

        // star of a dead symbol becomes ε
        let r3 = R::star(s("a"));
        let dead3: BTreeSet<String> = ["a".to_string()].into_iter().collect();
        assert_eq!(r3.eliminate_symbols(&dead3), R::epsilon());
    }

    #[test]
    fn display_roundtrips_visually() {
        let r = R::concat(R::alt(s("a"), s("b")), R::star(s("c")));
        assert_eq!(format!("{r}"), "(a|b) c*");
    }

    #[test]
    fn seq_and_union_edge_cases() {
        assert_eq!(R::seq(std::iter::empty()), R::epsilon());
        assert_eq!(R::union(std::iter::empty()), R::empty());
        assert_eq!(R::seq([s("a")]), s("a"));
        assert_eq!(R::union([s("a")]), s("a"));
    }
}
