//! Bitset-based NFA simulation — the compiled fast path.
//!
//! The reference automaton code in [`crate::nfa`] manipulates
//! `BTreeSet<StateId>` state sets and `BTreeMap`-keyed transition tables;
//! that is the clearest possible transcription of the subset construction,
//! but every conformance check, chase step and ordering query pays tree
//! allocations and pointer chasing per symbol. This module compiles an
//! [`Nfa`] once into dense bit-parallel form:
//!
//! * state sets are [`StateMask`]s — `u64` blocks, one bit per state;
//! * ε-closures are precomputed per state ([`BitsetNfa::state_closure`]);
//! * for every `(symbol, state)` pair the *ε-closed* successor set is
//!   precomputed, so simulating one input symbol is a handful of `OR`s;
//! * permutation-language membership (`π(r)`, Proposition 5.3) runs the same
//!   memoised counting search as [`crate::parikh::perm_accepts`] but keyed on
//!   bit masks instead of `BTreeSet`s.
//!
//! The semantics are differential-tested against the reference
//! implementation; see the tests below and `tests/properties.rs` at the
//! workspace root.

use crate::nfa::{Dfa, Nfa, StateId};
use crate::Alphabet;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A set of NFA states as a fixed-width bit mask (`u64` blocks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateMask {
    blocks: Vec<u64>,
}

impl StateMask {
    /// The empty set over `num_states` states.
    pub fn empty(num_states: usize) -> Self {
        StateMask {
            blocks: vec![0; num_states.div_ceil(64)],
        }
    }

    /// Number of `u64` blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Insert state `q`.
    pub fn insert(&mut self, q: StateId) {
        self.blocks[q / 64] |= 1u64 << (q % 64);
    }

    /// Is state `q` in the set?
    pub fn contains(&self, q: StateId) -> bool {
        self.blocks[q / 64] & (1u64 << (q % 64)) != 0
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &StateMask) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Do the two sets share a state?
    pub fn intersects(&self, other: &StateMask) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Clear all bits (reuse the allocation).
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Iterate over the states in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    return None;
                }
                let bit = b.trailing_zeros() as usize;
                b &= b - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// Convert to the reference representation.
    pub fn to_btree(&self) -> BTreeSet<StateId> {
        self.iter().collect()
    }

    /// The mask's only block, when the state space fits in 64 bits.
    #[inline]
    fn single_block(&self) -> Option<u64> {
        match self.blocks.as_slice() {
            [b] => Some(*b),
            _ => None,
        }
    }

    /// Build from the reference representation.
    pub fn from_btree(num_states: usize, set: &BTreeSet<StateId>) -> Self {
        let mut m = StateMask::empty(num_states);
        for &q in set {
            m.insert(q);
        }
        m
    }
}

/// Alphabet width up to which permutation-memo keys use the packed
/// encoding: counts at 16 bits each fill two `u64`s at 8 symbols.
const PACKED_SYMS: usize = 8;
/// Bits per count in a packed key.
const PACKED_BITS: u32 = 16;
const PACKED_PER_WORD: usize = (u64::BITS / PACKED_BITS) as usize;

/// A memoisation key of the permutation-language search. Small automata
/// (≤ 64 states, ≤ [`PACKED_SYMS`] alphabet symbols) with small counts
/// (< 2¹⁶ each) pack the whole subproblem into three machine words; only
/// automata or counts outside that envelope pay for a mask clone and a
/// heap-allocated count vector per memo entry.
///
/// The choice of variant is deterministic per logical key (the envelope test
/// depends only on the automaton — fixed per memo — and on the count values
/// themselves), and within a variant the encoding is injective, so mixing
/// packed and spilled keys in one table is sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MemoKey {
    Packed { mask: u64, counts: [u64; 2] },
    Spilled(StateMask, Vec<u64>),
}

/// Memo table for [`BitsetNfa::perm_accepts_counts_memo`] with the small-key
/// packed encoding. Obtain one from [`BitsetNfa::perm_memo`]; it is tied to
/// that automaton (keys are masks over its states and vectors over its
/// alphabet) and must not be shared across automata. Unlike the previous
/// `HashMap<(StateMask, Vec<u64>), bool>` table this owns no borrowed state,
/// so callers keep one per rule (or per call) and the compiled layer stays
/// `Send + Sync`.
#[derive(Debug, Clone, Default)]
pub struct PermMemo {
    packable: bool,
    map: HashMap<MemoKey, bool>,
}

impl PermMemo {
    fn key(&self, mask: &StateMask, counts: &[u64]) -> MemoKey {
        if self.packable {
            if let Some(block) = mask.single_block() {
                if counts.iter().all(|&c| c < 1 << PACKED_BITS) {
                    let mut packed = [0u64; 2];
                    for (i, &c) in counts.iter().enumerate() {
                        packed[i / PACKED_PER_WORD] |=
                            c << ((i % PACKED_PER_WORD) as u32 * PACKED_BITS);
                    }
                    return MemoKey::Packed {
                        mask: block,
                        counts: packed,
                    };
                }
            }
        }
        MemoKey::Spilled(mask.clone(), counts.to_vec())
    }

    /// Number of memoised subproblems.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every memoised entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// An [`Nfa`] compiled into bit-parallel form (see the module docs).
#[derive(Debug, Clone)]
pub struct BitsetNfa<S> {
    num_states: usize,
    /// Sorted alphabet; symbols are addressed by index.
    alphabet: Vec<S>,
    /// ε-closure of the start state.
    start_closure: StateMask,
    /// Accepting states.
    accepting: StateMask,
    /// Per state, its labelled transitions as `(alphabet index, ε-closure
    /// of δ(q, a))` pairs sorted by index. Sparse on purpose: a Thompson
    /// state carries at most one labelled transition, so storing a mask per
    /// `(symbol, state)` pair would cost `O(alphabet × states²)` bits on
    /// wide content models.
    trans: Vec<Vec<(u32, StateMask)>>,
    /// `state_closure[q]`: ε-closure of `{q}` (used by `matches_from`).
    state_closure: Vec<StateMask>,
}

impl<S: Alphabet> BitsetNfa<S> {
    /// Compile `nfa` (one-off cost linear in states × alphabet × closure
    /// size; every later query is bit-parallel).
    pub fn from_nfa(nfa: &Nfa<S>) -> Self {
        let n = nfa.num_states();
        let alphabet: Vec<S> = nfa.alphabet().to_vec();
        let state_closure: Vec<StateMask> = (0..n)
            .map(|q| {
                let closure = nfa.eps_closure(&[q].into_iter().collect());
                StateMask::from_btree(n, &closure)
            })
            .collect();
        let trans: Vec<Vec<(u32, StateMask)>> = (0..n)
            .map(|q| {
                let singleton: BTreeSet<StateId> = [q].into_iter().collect();
                let mut out = Vec::new();
                for (idx, sym) in alphabet.iter().enumerate() {
                    let nexts = nfa.step(&singleton, sym);
                    if nexts.is_empty() {
                        continue;
                    }
                    let mut mask = StateMask::empty(n);
                    for nxt in nexts {
                        mask.union_with(&state_closure[nxt]);
                    }
                    out.push((idx as u32, mask));
                }
                out
            })
            .collect();
        let accepting = StateMask::from_btree(n, nfa.accepting());
        let start_closure = state_closure[nfa.start()].clone();
        BitsetNfa {
            num_states: n,
            alphabet,
            start_closure,
            accepting,
            trans,
            state_closure,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The sorted alphabet.
    pub fn alphabet(&self) -> &[S] {
        &self.alphabet
    }

    /// Index of `sym` in the alphabet, if present.
    pub fn sym_index(&self, sym: &S) -> Option<usize> {
        self.alphabet.binary_search(sym).ok()
    }

    /// ε-closure of the initial state.
    pub fn start_mask(&self) -> &StateMask {
        &self.start_closure
    }

    /// ε-closure of a single state.
    pub fn state_closure(&self, q: StateId) -> &StateMask {
        &self.state_closure[q]
    }

    /// The accepting-state mask.
    pub fn accepting_mask(&self) -> &StateMask {
        &self.accepting
    }

    /// Does the (ε-closed) set contain an accepting state?
    pub fn accepts(&self, mask: &StateMask) -> bool {
        mask.intersects(&self.accepting)
    }

    /// One ε-closed step: all states reachable from `mask` by reading the
    /// symbol with alphabet index `sym_idx`.
    pub fn step_mask(&self, mask: &StateMask, sym_idx: usize) -> StateMask {
        let mut out = StateMask::empty(self.num_states);
        self.step_mask_into(mask, sym_idx, &mut out);
        out
    }

    /// As [`Self::step_mask`], writing into `out` (cleared first) to avoid
    /// allocation in simulation loops.
    pub fn step_mask_into(&self, mask: &StateMask, sym_idx: usize, out: &mut StateMask) {
        out.clear();
        let sym_idx = sym_idx as u32;
        for q in mask.iter() {
            let row = &self.trans[q];
            if let Ok(j) = row.binary_search_by_key(&sym_idx, |&(i, _)| i) {
                out.union_with(&row[j].1);
            }
        }
    }

    /// Does the automaton accept `word` from the initial state?
    pub fn matches(&self, word: &[S]) -> bool {
        self.matches_mask(self.start_closure.clone(), word)
    }

    /// Does the automaton accept `word` started in state `q` (the language
    /// `r_q` of Proposition 5.2)?
    pub fn matches_from(&self, q: StateId, word: &[S]) -> bool {
        self.matches_mask(self.state_closure[q].clone(), word)
    }

    fn matches_mask(&self, mut current: StateMask, word: &[S]) -> bool {
        let mut next = StateMask::empty(self.num_states);
        for sym in word {
            let Some(idx) = self.sym_index(sym) else {
                return false;
            };
            if current.is_empty() {
                return false;
            }
            self.step_mask_into(&current, idx, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        self.accepts(&current)
    }

    /// Membership of a count vector in the permutation language `π(r)`
    /// starting from the initial state (bitset analogue of
    /// [`crate::parikh::perm_accepts`]).
    pub fn perm_accepts(&self, counts: &BTreeMap<S, u64>) -> bool {
        self.perm_accepts_mask(&self.start_closure.clone(), counts)
    }

    /// Membership of a count vector in `π(r)` starting from an arbitrary
    /// ε-closed state set.
    pub fn perm_accepts_mask(&self, start: &StateMask, counts: &BTreeMap<S, u64>) -> bool {
        // Counts on symbols outside the alphabet can never be consumed.
        let mut vec_counts = vec![0u64; self.alphabet.len()];
        for (sym, &c) in counts {
            if c == 0 {
                continue;
            }
            match self.sym_index(sym) {
                Some(i) => vec_counts[i] = c,
                None => return false,
            }
        }
        let mut memo = self.perm_memo();
        self.perm_search(start, &mut vec_counts, &mut memo)
    }

    /// A fresh memo table for this automaton's permutation search, with the
    /// small-key encoding enabled whenever the automaton qualifies (see
    /// [`PermMemo`]). A memo must only ever be used with the automaton that
    /// created it.
    pub fn perm_memo(&self) -> PermMemo {
        PermMemo {
            packable: self.num_states <= 64 && self.alphabet.len() <= PACKED_SYMS,
            map: HashMap::new(),
        }
    }

    /// Memo-reusing variant of [`Self::perm_accepts_mask`]: `counts` is a
    /// vector indexed by this automaton's alphabet (see [`Self::sym_index`])
    /// and `memo` can be shared across calls with *different* masks/counts —
    /// the sibling-ordering algorithm issues O(children²) membership queries
    /// whose subproblems overlap heavily.
    ///
    /// `counts` is restored to its input value before returning.
    pub fn perm_accepts_counts_memo(
        &self,
        mask: &StateMask,
        counts: &mut Vec<u64>,
        memo: &mut PermMemo,
    ) -> bool {
        debug_assert_eq!(counts.len(), self.alphabet.len());
        self.perm_search(mask, counts, memo)
    }

    fn perm_search(&self, mask: &StateMask, counts: &mut Vec<u64>, memo: &mut PermMemo) -> bool {
        if counts.iter().all(|&c| c == 0) {
            return self.accepts(mask);
        }
        let key = memo.key(mask, counts);
        if let Some(&cached) = memo.map.get(&key) {
            return cached;
        }
        let mut found = false;
        for i in 0..counts.len() {
            if counts[i] == 0 {
                continue;
            }
            let next = self.step_mask(mask, i);
            if next.is_empty() {
                continue;
            }
            counts[i] -= 1;
            let ok = self.perm_search(&next, counts, memo);
            counts[i] += 1;
            if ok {
                found = true;
                break;
            }
        }
        memo.map.insert(key, found);
        found
    }

    /// Subset construction over bit masks with hashed keys; produces the same
    /// dense [`Dfa`] as [`Dfa::from_nfa`].
    pub fn to_dfa(&self) -> Dfa<S> {
        self.to_dfa_capped(usize::MAX)
            .expect("uncapped subset construction cannot bail")
    }

    /// As [`Self::to_dfa`], but gives up (returning `None`) as soon as the
    /// DFA's transition table would exceed `max_cells` entries
    /// (`states × alphabet`). Subset construction is worst-case exponential
    /// in NFA states — e.g. `(a|b)* a (a|b)^n` determinizes to ~2^n states —
    /// so compile-once callers bound the *output*, not the input, and fall
    /// back to NFA simulation when the bound trips.
    pub fn to_dfa_capped(&self, max_cells: usize) -> Option<Dfa<S>> {
        let alphabet = self.alphabet.clone();
        let width = alphabet.len().max(1);
        let mut index: HashMap<StateMask, usize> = HashMap::new();
        let mut sets: Vec<StateMask> = Vec::new();
        let mut table: Vec<Vec<usize>> = Vec::new();
        index.insert(self.start_closure.clone(), 0);
        sets.push(self.start_closure.clone());
        let mut i = 0;
        while i < sets.len() {
            if sets.len().saturating_mul(width) > max_cells {
                return None;
            }
            let current = sets[i].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for sym_idx in 0..alphabet.len() {
                let next = self.step_mask(&current, sym_idx);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = sets.len();
                        index.insert(next.clone(), id);
                        sets.push(next);
                        id
                    }
                };
                row.push(id);
            }
            table.push(row);
            i += 1;
        }
        if sets.len().saturating_mul(width) > max_cells {
            return None;
        }
        let accepting = sets.iter().map(|s| self.accepts(s)).collect();
        Some(Dfa::from_parts(table, alphabet, 0, accepting))
    }
}

// Compile-time audit: the bit-parallel layer is shareable across threads
// (no interior mutability anywhere). `xdx-core`'s `BatchEngine` relies on it.
#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<StateMask>();
    check::<PermMemo>();
    check::<BitsetNfa<String>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parikh::{perm_accepts, perm_accepts_from};
    use crate::parser::parse;
    use crate::Regex;

    fn nfa(src: &str) -> Nfa<String> {
        Nfa::from_regex(&parse(src).unwrap())
    }

    fn w(src: &str) -> Vec<String> {
        src.split_whitespace().map(|s| s.to_string()).collect()
    }

    fn all_words(alphabet: &[String], max_len: usize) -> Vec<Vec<String>> {
        let mut all: Vec<Vec<String>> = vec![vec![]];
        let mut layer: Vec<Vec<String>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for word in &layer {
                for s in alphabet {
                    let mut nw = word.clone();
                    nw.push(s.clone());
                    next.push(nw);
                }
            }
            all.extend(next.iter().cloned());
            layer = next;
        }
        all
    }

    #[test]
    fn mask_basics() {
        let mut m = StateMask::empty(130);
        assert!(m.is_empty());
        m.insert(0);
        m.insert(63);
        m.insert(64);
        m.insert(129);
        assert!(m.contains(129) && m.contains(64) && !m.contains(1));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        let round = StateMask::from_btree(130, &m.to_btree());
        assert_eq!(m, round);
    }

    #[test]
    fn bitset_matches_agrees_with_reference() {
        for src in [
            "(a|b)* c",
            "b c+ d* e?",
            "(b c)* (d e)*",
            "a|a a b*",
            "eps",
            "(a b)|(a c)",
        ] {
            let reference = nfa(src);
            let fast = BitsetNfa::from_nfa(&reference);
            let alphabet: Vec<String> = reference.alphabet().to_vec();
            for word in all_words(&alphabet, 4) {
                assert_eq!(
                    reference.matches(&word),
                    fast.matches(&word),
                    "{src} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn bitset_matches_from_agrees_with_reference() {
        let reference = nfa("a b c*");
        let fast = BitsetNfa::from_nfa(&reference);
        for q in 0..reference.num_states() {
            for word in [w("b c"), w("a b"), w("c c"), w("")] {
                assert_eq!(
                    reference.matches_from(q, &word),
                    fast.matches_from(q, &word),
                    "state {q} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn bitset_perm_accepts_agrees_with_reference() {
        for src in ["(a b)* (c d)*", "a b* c?", "(a b c)*", "a | a a b*"] {
            let reference = nfa(src);
            let fast = BitsetNfa::from_nfa(&reference);
            for ca in 0u64..3 {
                for cb in 0u64..3 {
                    for cc in 0u64..3 {
                        let counts: BTreeMap<String, u64> =
                            [("a".into(), ca), ("b".into(), cb), ("c".into(), cc)]
                                .into_iter()
                                .filter(|&(_, c)| c > 0)
                                .collect();
                        assert_eq!(
                            perm_accepts(&reference, &counts),
                            fast.perm_accepts(&counts),
                            "{src} on {counts:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bitset_perm_accepts_from_intermediate_states() {
        let reference = nfa("(a b)* (c d)*");
        let fast = BitsetNfa::from_nfa(&reference);
        let counts: BTreeMap<String, u64> = [
            ("b".to_string(), 1u64),
            ("c".to_string(), 1),
            ("d".to_string(), 1),
        ]
        .into_iter()
        .collect();
        for q in 0..reference.num_states() {
            assert_eq!(
                perm_accepts_from(&reference, q, &counts),
                fast.perm_accepts_mask(fast.state_closure(q), &counts),
                "state {q}"
            );
        }
    }

    #[test]
    fn bitset_to_dfa_agrees_with_reference_construction() {
        for src in ["(a|b)* c", "b c+ d* e?", "(b c)* (d e)*", "a|a a b*"] {
            let reference = nfa(src);
            let fast = BitsetNfa::from_nfa(&reference);
            let dfa_ref = Dfa::from_nfa_reference(&reference);
            let dfa_fast = fast.to_dfa();
            let alphabet: Vec<String> = reference.alphabet().to_vec();
            for word in all_words(&alphabet, 4) {
                assert_eq!(
                    dfa_ref.matches(&word),
                    dfa_fast.matches(&word),
                    "{src} on {word:?}"
                );
            }
        }
    }

    #[test]
    fn counts_outside_the_alphabet_are_rejected() {
        let fast = BitsetNfa::from_nfa(&nfa("a*"));
        let counts: BTreeMap<String, u64> = [("z".to_string(), 1u64)].into_iter().collect();
        assert!(!fast.perm_accepts(&counts));
        let empty: BTreeMap<String, u64> = BTreeMap::new();
        assert!(fast.perm_accepts(&empty));
    }

    #[test]
    fn packed_memo_keys_agree_with_reference() {
        // ≤ 64 states, 4-symbol alphabet: every key of this search packs.
        let reference = nfa("(a b)* (c d)*");
        let fast = BitsetNfa::from_nfa(&reference);
        let mut memo = fast.perm_memo();
        let idx = |s: &str| fast.sym_index(&s.to_string()).unwrap();
        for ca in 0u64..4 {
            for cb in 0u64..4 {
                let mut counts = vec![0u64; fast.alphabet().len()];
                counts[idx("a")] = ca;
                counts[idx("b")] = cb;
                counts[idx("c")] = 1;
                counts[idx("d")] = 1;
                let shared =
                    fast.perm_accepts_counts_memo(fast.start_mask(), &mut counts, &mut memo);
                let map: BTreeMap<String, u64> = [
                    ("a".to_string(), ca),
                    ("b".to_string(), cb),
                    ("c".to_string(), 1),
                    ("d".to_string(), 1),
                ]
                .into_iter()
                .filter(|&(_, c)| c > 0)
                .collect();
                assert_eq!(shared, perm_accepts(&reference, &map), "a={ca} b={cb}");
                // The counts vector is restored by the search.
                assert_eq!(counts[idx("a")], ca);
            }
        }
        assert!(!memo.is_empty());
        // Re-asking a warmed query must agree with a cold memo.
        let mut counts = vec![0u64; fast.alphabet().len()];
        counts[idx("a")] = 2;
        counts[idx("b")] = 2;
        let warm = fast.perm_accepts_counts_memo(fast.start_mask(), &mut counts, &mut memo);
        let mut cold = fast.perm_memo();
        let cold_r = fast.perm_accepts_counts_memo(fast.start_mask(), &mut counts, &mut cold);
        assert_eq!(warm, cold_r);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn wide_alphabets_spill_and_still_agree() {
        // 10 symbols > PACKED_SYMS: keys spill to the generic encoding.
        let src = (0..10)
            .map(|i| format!("s{i}?"))
            .collect::<Vec<_>>()
            .join(" ");
        let reference = nfa(&src);
        let fast = BitsetNfa::from_nfa(&reference);
        let mut memo = fast.perm_memo();
        assert!(
            !memo.packable,
            "10 symbols must be outside the packed envelope"
        );
        for picks in [[0usize, 3, 7], [1, 1, 9], [2, 5, 5]] {
            let mut counts = vec![0u64; fast.alphabet().len()];
            let mut map: BTreeMap<String, u64> = BTreeMap::new();
            for p in picks {
                let s = format!("s{p}");
                counts[fast.sym_index(&s).unwrap()] += 1;
                *map.entry(s).or_insert(0) += 1;
            }
            assert_eq!(
                fast.perm_accepts_counts_memo(fast.start_mask(), &mut counts, &mut memo),
                perm_accepts(&reference, &map),
                "{picks:?}"
            );
        }
    }

    #[test]
    fn empty_language_never_matches() {
        let reference = Nfa::from_regex(&Regex::<String>::Empty);
        let fast = BitsetNfa::from_nfa(&reference);
        assert!(!fast.matches(&[]));
        assert!(!fast.matches(&w("a")));
    }
}
