//! # xdx-relang — regular-expression algebra for XML data exchange
//!
//! This crate is the string-language substrate of the XML data exchange
//! library reproducing Arenas & Libkin, *"XML Data Exchange: Consistency and
//! Query Answering"* (PODS 2005 / JACM 2008).
//!
//! DTD content models are regular expressions over element types (Section 2 of
//! the paper), and almost every algorithm in the paper manipulates them in one
//! of two guises:
//!
//! * as ordinary **string languages** — conformance of an ordered XML tree to
//!   a DTD, the sibling re-ordering algorithm of Proposition 5.2, witness
//!   generation;
//! * as **permutation languages** `π(r)` (the commutative closure / Parikh
//!   image of `L(r)`) — conformance of *unordered* trees, the chase step
//!   `ChangeReg`, and the univocality criterion of the dichotomy theorem
//!   (Theorem 6.2).
//!
//! The crate provides:
//!
//! * [`ast::Regex`] — the regular-expression AST of the paper's grammar
//!   (`ε`, symbols, union, concatenation, Kleene star, plus the `+`/`?`
//!   shorthands), together with structural predicates (simple expressions,
//!   nested-relational shape) and the size measure `‖r‖` used in Lemma 5.8;
//! * [`parser`] — a small text syntax (`"(a|b)* c? d+"`) used by examples,
//!   tests and the benchmark workload generators;
//! * [`nfa`] — Thompson construction, subset-construction DFAs, emptiness,
//!   matching, shortest witnesses, and "match from state `q`" queries used by
//!   the ordering algorithm;
//! * [`parikh`] — semilinear representations of Parikh images (the effective
//!   form of the Pilling normal form of Lemma 5.4), membership in `π(r)`
//!   (Proposition 5.3), and minimal extensions;
//! * [`repair`] — the repair machinery of Section 6.1: `min_ext(w, r)`,
//!   `rep(w, r)`, the preorder `⊑_w`, and maximal repairs used by `ChangeReg`;
//! * [`univocal`] — `fixed_a(r)`, `c_a(r)`, `c(r)` and the univocality test of
//!   Definition 6.9 / Proposition 6.10.
//!
//! The crate is generic over the symbol type through the [`Alphabet`] trait so
//! that the XML layer can instantiate it with interned element-type names
//! while tests can use plain `char`s or `&str`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bitset;
pub mod nfa;
pub mod parikh;
pub mod parser;
pub mod repair;
pub mod univocal;

use std::fmt::Debug;
use std::hash::Hash;

/// Marker trait for types usable as alphabet symbols (element types).
///
/// Blanket-implemented for every type with the required bounds; you never
/// implement it manually.
pub trait Alphabet: Clone + Eq + Ord + Hash + Debug {}

impl<T: Clone + Eq + Ord + Hash + Debug> Alphabet for T {}

pub use ast::{Multiplicity, NestedFactor, Regex};
pub use bitset::{BitsetNfa, PermMemo, StateMask};
pub use nfa::{Dfa, Nfa};
pub use parikh::{
    parikh_image, perm_accepts, perm_accepts_from, AlphabetMap, LinearSet, ParikhVector,
    SemilinearSet,
};
pub use parser::parse as parse_regex;
pub use repair::{
    max_repairs, maximum_repair, min_ext, preorder_le, rep, Multiset, RepairConfig, RepairContext,
};
pub use univocal::{
    c_of, c_sym, check_univocality, is_univocal, NonUnivocalReason, UnivocalEvidence,
    UnivocalityConfig, UnivocalityVerdict,
};
