//! The repair machinery of Section 6.1.
//!
//! When the chase step `ChangeReg` finds a node whose children multiset `w`
//! does not belong to the permutation language `π(r)` of the content model
//! `r`, it replaces `w` by a *repair*: an element of
//!
//! ```text
//! rep(w, r) = ⋃ { min_ext(w', r) : w' ⪯ w, alph(w') = alph(w) }
//! min_ext(w, r) = min { w' ∈ π(r) : w ⪯ w' }
//! ```
//!
//! chosen maximal with respect to the preorder `⊑_w`:
//!
//! ```text
//! w1 ⊑_w w2  ⇔  (1) #b(w2) ≥ min{#b(w1), #b(w)} for all b ∈ alph(w), and
//!               (2) alph(w2) \ alph(w) ⊆ alph(w1) \ alph(w)
//! ```
//!
//! (preferring repairs that merge as few children as possible and invent as
//! few new element types as possible). All functions operate on multisets of
//! symbols (`BTreeMap<S, u64>`), since `π(r)` membership only depends on
//! Parikh vectors.

use crate::ast::Regex;
use crate::parikh::{parikh_image, AlphabetMap, SemilinearSet};
use crate::Alphabet;
use std::collections::{BTreeMap, BTreeSet};

/// A multiset of symbols, the abstraction of a string used by the repair
/// machinery.
pub type Multiset<S> = BTreeMap<S, u64>;

/// Configuration for the repair enumeration.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Upper bound on the number of sub-multisets `w' ⪯ w` enumerated when
    /// computing `rep(w, r)`. The number of sub-multisets is
    /// `∏_b #b(w)`, which is polynomial for fixed alphabets (Lemma 6.18) but
    /// can be large for adversarial inputs; exceeding the bound returns an
    /// error instead of running away.
    pub max_sub_multisets: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_sub_multisets: 1_000_000,
        }
    }
}

/// Error raised when a repair enumeration exceeds its configured budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairBudgetExceeded {
    /// Number of sub-multisets that would have to be enumerated.
    pub required: usize,
    /// The configured maximum.
    pub budget: usize,
}

impl std::fmt::Display for RepairBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "repair enumeration requires {} sub-multisets, budget is {}",
            self.required, self.budget
        )
    }
}

impl std::error::Error for RepairBudgetExceeded {}

/// A pre-computed context for repeated repair queries against the same
/// regular expression (used by the chase, which repairs many nodes with the
/// same content model).
#[derive(Debug, Clone)]
pub struct RepairContext<S> {
    regex: Regex<S>,
    alphabet: AlphabetMap<S>,
    image: SemilinearSet,
}

impl<S: Alphabet> RepairContext<S> {
    /// Build a context for `regex`, able to repair multisets over
    /// `alph(regex) ∪ extra_symbols`.
    pub fn new(regex: &Regex<S>, extra_symbols: impl IntoIterator<Item = S>) -> Self {
        let mut syms: BTreeSet<S> = regex.alphabet();
        syms.extend(extra_symbols);
        let alphabet = AlphabetMap::new(syms);
        let image = parikh_image(regex, &alphabet);
        RepairContext {
            regex: regex.clone(),
            alphabet,
            image,
        }
    }

    /// The regular expression this context repairs against.
    pub fn regex(&self) -> &Regex<S> {
        &self.regex
    }

    /// The alphabet map used for Parikh vectors.
    pub fn alphabet(&self) -> &AlphabetMap<S> {
        &self.alphabet
    }

    /// Membership `w ∈ π(r)`.
    pub fn perm_contains(&self, w: &Multiset<S>) -> bool {
        match self.alphabet.counts_of_map(w) {
            Some(v) => self.image.contains(&v),
            None => false,
        }
    }

    /// `min_ext(w, r)`: the ⪯-minimal elements of `π(r)` dominating `w`.
    pub fn min_ext(&self, w: &Multiset<S>) -> Vec<Multiset<S>> {
        let Some(v) = self.alphabet.counts_of_map(w) else {
            return Vec::new();
        };
        self.image
            .min_extensions(&v)
            .into_iter()
            .map(|u| self.alphabet.to_map(&u))
            .collect()
    }

    /// `rep(w, r)`: union of `min_ext(w', r)` over sub-multisets `w' ⪯ w`
    /// with the same support as `w`.
    pub fn rep(
        &self,
        w: &Multiset<S>,
        config: &RepairConfig,
    ) -> Result<Vec<Multiset<S>>, RepairBudgetExceeded> {
        let support: Vec<(&S, u64)> = w
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| (s, c))
            .collect();
        // If some symbol of w is outside the repairable alphabet there is no
        // repair at all (the STDs force a child type the DTD cannot have).
        for (s, _) in &support {
            if self.alphabet.index(s).is_none() {
                return Ok(Vec::new());
            }
        }
        let required: usize = support
            .iter()
            .map(|(_, c)| *c as usize)
            .try_fold(1usize, |acc, c| acc.checked_mul(c))
            .unwrap_or(usize::MAX);
        if required > config.max_sub_multisets {
            return Err(RepairBudgetExceeded {
                required,
                budget: config.max_sub_multisets,
            });
        }
        let mut results: Vec<Multiset<S>> = Vec::new();
        let mut seen: BTreeSet<Vec<(S, u64)>> = BTreeSet::new();
        let mut current: Multiset<S> = support.iter().map(|(s, _)| ((*s).clone(), 1)).collect();
        // Enumerate all vectors with 1 ≤ current[b] ≤ w[b] via odometer.
        loop {
            for ext in self.min_ext(&current) {
                let key: Vec<(S, u64)> = ext.iter().map(|(s, c)| (s.clone(), *c)).collect();
                if seen.insert(key) {
                    results.push(ext);
                }
            }
            // advance odometer
            let mut advanced = false;
            for (s, max) in &support {
                let entry = current.get_mut(*s).expect("support symbol present");
                if *entry < *max {
                    *entry += 1;
                    advanced = true;
                    break;
                } else {
                    *entry = 1;
                }
            }
            if !advanced {
                break;
            }
        }
        Ok(results)
    }

    /// The ⊑_w-maximal elements of `rep(w, r)`.
    pub fn maximal_repairs(
        &self,
        w: &Multiset<S>,
        config: &RepairConfig,
    ) -> Result<Vec<Multiset<S>>, RepairBudgetExceeded> {
        let all = self.rep(w, config)?;
        Ok(all
            .iter()
            .filter(|cand| {
                !all.iter()
                    .any(|other| !preorder_le(other, cand, w) && preorder_le(cand, other, w))
            })
            .cloned()
            .collect())
    }

    /// A ⊑_w-*maximum* element of `rep(w, r)`: a repair dominating every other
    /// repair. Returns `None` when `rep(w, r)` is empty or has no maximum
    /// (which cannot happen when the expression is univocal — Definition 6.9).
    pub fn maximum_repair(
        &self,
        w: &Multiset<S>,
        config: &RepairConfig,
    ) -> Result<Option<Multiset<S>>, RepairBudgetExceeded> {
        let all = self.rep(w, config)?;
        Ok(all
            .iter()
            .find(|cand| all.iter().all(|other| preorder_le(other, cand, w)))
            .cloned())
    }
}

/// The preorder `w1 ⊑_w w2` of Section 6.1.
pub fn preorder_le<S: Alphabet>(w1: &Multiset<S>, w2: &Multiset<S>, w: &Multiset<S>) -> bool {
    let count = |m: &Multiset<S>, s: &S| m.get(s).copied().unwrap_or(0);
    // (1) for all b ∈ alph(w): #b(w2) ≥ min(#b(w1), #b(w))
    for (b, &cw) in w.iter().filter(|(_, &c)| c > 0) {
        let need = count(w1, b).min(cw);
        if count(w2, b) < need {
            return false;
        }
    }
    // (2) alph(w2) \ alph(w) ⊆ alph(w1) \ alph(w)
    for (b, &c2) in w2.iter() {
        if c2 > 0 && count(w, b) == 0 && count(w1, b) == 0 {
            return false;
        }
    }
    true
}

/// Convenience wrapper: `min_ext(w, r)` building a fresh context.
pub fn min_ext<S: Alphabet>(w: &Multiset<S>, r: &Regex<S>) -> Vec<Multiset<S>> {
    RepairContext::new(r, w.keys().cloned()).min_ext(w)
}

/// Convenience wrapper: `rep(w, r)` building a fresh context and using the
/// default budget.
pub fn rep<S: Alphabet>(w: &Multiset<S>, r: &Regex<S>) -> Vec<Multiset<S>> {
    RepairContext::new(r, w.keys().cloned())
        .rep(w, &RepairConfig::default())
        .unwrap_or_default()
}

/// Convenience wrapper: the ⊑_w-maximal repairs of `w` against `r`.
pub fn max_repairs<S: Alphabet>(w: &Multiset<S>, r: &Regex<S>) -> Vec<Multiset<S>> {
    RepairContext::new(r, w.keys().cloned())
        .maximal_repairs(w, &RepairConfig::default())
        .unwrap_or_default()
}

/// Convenience wrapper: a ⊑_w-maximum repair, if one exists.
pub fn maximum_repair<S: Alphabet>(w: &Multiset<S>, r: &Regex<S>) -> Option<Multiset<S>> {
    RepairContext::new(r, w.keys().cloned())
        .maximum_repair(w, &RepairConfig::default())
        .unwrap_or(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ms(pairs: &[(&str, u64)]) -> Multiset<String> {
        pairs.iter().map(|(s, c)| (s.to_string(), *c)).collect()
    }

    fn r(src: &str) -> Regex<String> {
        parse(src).unwrap()
    }

    #[test]
    fn min_ext_of_b_in_bbc_star() {
        // min_ext(b, (bbc)*) = {bbc} up to permutation — Section 6.1 example.
        let exts = min_ext(&ms(&[("b", 1)]), &r("(b b c)*"));
        assert_eq!(exts, vec![ms(&[("b", 2), ("c", 1)])]);
    }

    #[test]
    fn rep_of_bb_against_bcplus_merges() {
        // min_ext(bb, bc+) = ∅, so rep(bb, bc+) falls back to merging the two
        // b's: rep = min_ext(b, bc+) = {bc}.
        let result = rep(&ms(&[("b", 2)]), &r("b c+"));
        assert_eq!(result, vec![ms(&[("b", 1), ("c", 1)])]);
    }

    #[test]
    fn rep_of_cc_example_from_section_6_1() {
        // rep(cc, (cd)*(cde)*) contains both ccdd and cd (merging the two c's),
        // and ccdd is preferred (it is the ⊑_cc maximum).
        let reg = r("(c d)* (c d e)*");
        let w = ms(&[("c", 2)]);
        let all = rep(&w, &reg);
        assert!(all.contains(&ms(&[("c", 2), ("d", 2)])));
        assert!(all.contains(&ms(&[("c", 1), ("d", 1)])));
        let max = maximum_repair(&w, &reg).expect("maximum exists");
        assert_eq!(max, ms(&[("c", 2), ("d", 2)]));
    }

    #[test]
    fn preorder_prefers_fewer_merges_and_fewer_new_symbols() {
        let w = ms(&[("c", 2)]);
        // ccdd vs cd: ccdd ⊒ cd and cd ⊑ ccdd strictly.
        assert!(preorder_le(
            &ms(&[("c", 1), ("d", 1)]),
            &ms(&[("c", 2), ("d", 2)]),
            &w
        ));
        assert!(!preorder_le(
            &ms(&[("c", 2), ("d", 2)]),
            &ms(&[("c", 1), ("d", 1)]),
            &w
        ));
        // ccdd vs ccdde: ccdde introduces e ∉ alph(w)... both have no symbols
        // outside alph(w)? e is outside alph(w) and outside ccdd, so
        // ccdde ⊑ ccdd requires alph(ccdd)\alph(w) ⊆ alph(ccdde)\alph(w): yes.
        // ccdd ⊑ ccdde requires {e} ⊆ ∅: no. So ccdd is strictly above.
        assert!(preorder_le(
            &ms(&[("c", 2), ("d", 2), ("e", 1)]),
            &ms(&[("c", 2), ("d", 2)]),
            &w
        ));
        assert!(!preorder_le(
            &ms(&[("c", 2), ("d", 2)]),
            &ms(&[("c", 2), ("d", 2), ("e", 1)]),
            &w
        ));
    }

    #[test]
    fn bc_and_cb_are_equivalent_maxima() {
        // From Example 6.13: rep(BB, (BC)*) = {BC} ∪ {BBCC,…}; BBCC is the
        // maximum. (Count vectors collapse permutations already.)
        let reg = r("(B C)*");
        let w = ms(&[("B", 2)]);
        let all = rep(&w, &reg);
        assert!(all.contains(&ms(&[("B", 1), ("C", 1)])));
        assert!(all.contains(&ms(&[("B", 2), ("C", 2)])));
        let max = maximum_repair(&w, &reg).unwrap();
        assert_eq!(max, ms(&[("B", 2), ("C", 2)]));
    }

    #[test]
    fn non_univocal_expression_can_lack_a_maximum() {
        // r = ab | ac is not univocal: rep(a, r) = {ab, ac} has two maximal
        // incomparable elements and therefore no maximum.
        let reg = r("(a b)|(a c)");
        let w = ms(&[("a", 1)]);
        let all = rep(&w, &reg);
        assert!(all.contains(&ms(&[("a", 1), ("b", 1)])));
        assert!(all.contains(&ms(&[("a", 1), ("c", 1)])));
        let maxima = max_repairs(&w, &reg);
        assert_eq!(
            maxima.len(),
            2,
            "expected 2 maximal repairs, got {maxima:?}"
        );
        assert_eq!(maximum_repair(&w, &reg), None);
    }

    #[test]
    fn rep_empty_when_symbol_cannot_appear() {
        // The STDs force a child of type z but the content model never allows
        // z: no repair exists.
        let reg = r("a b*");
        let w = ms(&[("a", 1), ("z", 1)]);
        assert!(rep(&w, &reg).is_empty());
    }

    #[test]
    fn rep_respects_budget() {
        let reg = r("a*");
        let ctx = RepairContext::new(&reg, Vec::<String>::new());
        let w = ms(&[("a", 100)]);
        let tiny = RepairConfig {
            max_sub_multisets: 10,
        };
        assert!(ctx.rep(&w, &tiny).is_err());
        assert!(ctx.rep(&w, &RepairConfig::default()).is_ok());
    }

    #[test]
    fn perm_contains_via_context() {
        let ctx = RepairContext::new(&r("(a b)*"), Vec::<String>::new());
        assert!(ctx.perm_contains(&ms(&[("a", 2), ("b", 2)])));
        assert!(!ctx.perm_contains(&ms(&[("a", 2), ("b", 1)])));
        assert!(!ctx.perm_contains(&ms(&[("z", 1)])));
    }
}
