//! Parikh images and permutation languages `π(r)`.
//!
//! Section 5.2 of the paper works with the *permutation language*
//! `π(r) ⊆ Γ*`: all permutations of words of `L(r)`. Membership of a word in
//! `π(r)` only depends on its Parikh vector (symbol counts), so this module
//! works with count vectors throughout.
//!
//! Two complementary machineries are provided:
//!
//! 1. **Counting simulation on the NFA** ([`perm_accepts`],
//!    [`perm_accepts_from`]): decides `w ∈ π(r)` by a memoised search over
//!    (state-set, remaining-counts) pairs. For a *fixed* regular expression
//!    this is polynomial in `|w|` (the count space has `(|w|+1)^{|Γ|}` points
//!    with `|Γ|` a constant), exactly matching the tractability statement of
//!    Proposition 5.3; for varying expressions the problem is NP-complete and
//!    the simulation degrades accordingly.
//!
//! 2. **Semilinear sets** ([`SemilinearSet`], [`parikh_image`]): an effective
//!    representation of `π(r)` as a finite union of linear sets
//!    `base + periods*`. This is exactly the Pilling normal form of
//!    Lemma 5.4 — each linear set corresponds to one disjunct
//!    `w₀ w₁* ⋯ w_m*` — and is the basis of the univocality analysis
//!    (Definition 6.9, Proposition 6.10) in [`crate::univocal`].

use crate::ast::Regex;
use crate::nfa::{Nfa, StateId};
use crate::Alphabet;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A Parikh vector: counts per symbol, indexed consistently with an
/// [`AlphabetMap`].
pub type ParikhVector = Vec<u64>;

/// A fixed enumeration of an alphabet, mapping symbols to vector indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphabetMap<S> {
    symbols: Vec<S>,
}

impl<S: Alphabet> AlphabetMap<S> {
    /// Build an alphabet map from an iterator of symbols (deduplicated,
    /// sorted).
    pub fn new(symbols: impl IntoIterator<Item = S>) -> Self {
        let set: BTreeSet<S> = symbols.into_iter().collect();
        AlphabetMap {
            symbols: set.into_iter().collect(),
        }
    }

    /// Alphabet map of all symbols occurring in a regular expression.
    pub fn of_regex(r: &Regex<S>) -> Self {
        Self::new(r.alphabet())
    }

    /// Number of symbols (the dimension of Parikh vectors).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The index of `s`, if present.
    pub fn index(&self, s: &S) -> Option<usize> {
        self.symbols.binary_search(s).ok()
    }

    /// The symbol at index `i`.
    pub fn symbol(&self, i: usize) -> &S {
        &self.symbols[i]
    }

    /// All symbols in index order.
    pub fn symbols(&self) -> &[S] {
        &self.symbols
    }

    /// The Parikh vector of a word. Returns `None` if the word mentions a
    /// symbol outside this alphabet.
    pub fn counts_of_word(&self, word: &[S]) -> Option<ParikhVector> {
        let mut v = vec![0u64; self.len()];
        for s in word {
            let i = self.index(s)?;
            v[i] += 1;
        }
        Some(v)
    }

    /// The Parikh vector of a count map. Returns `None` if a positive count is
    /// given for a symbol outside this alphabet.
    pub fn counts_of_map(&self, counts: &BTreeMap<S, u64>) -> Option<ParikhVector> {
        let mut v = vec![0u64; self.len()];
        for (s, &c) in counts {
            if c == 0 {
                continue;
            }
            let i = self.index(s)?;
            v[i] += c;
        }
        Some(v)
    }

    /// Convert a Parikh vector back into a symbol-count map (omitting zeros).
    pub fn to_map(&self, v: &[u64]) -> BTreeMap<S, u64> {
        self.symbols
            .iter()
            .cloned()
            .zip(v.iter().copied())
            .filter(|(_, c)| *c > 0)
            .collect()
    }

    /// Materialise a Parikh vector as a word (symbols in index order).
    pub fn to_word(&self, v: &[u64]) -> Vec<S> {
        let mut out = Vec::new();
        for (i, &c) in v.iter().enumerate() {
            for _ in 0..c {
                out.push(self.symbols[i].clone());
            }
        }
        out
    }
}

/// A linear set `base + periods*` of Parikh vectors.
///
/// In Pilling-normal-form terms (Lemma 5.4) this is one disjunct
/// `w₀ (w₁)* ⋯ (w_m)*`, where `base` is the Parikh vector of `w₀` and each
/// period the Parikh vector of some `w_i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearSet {
    /// The constant offset.
    pub base: ParikhVector,
    /// The period vectors (all-zero periods are never stored).
    pub periods: Vec<ParikhVector>,
}

impl LinearSet {
    fn normalised(base: ParikhVector, periods: Vec<ParikhVector>) -> Self {
        let mut ps: Vec<ParikhVector> = periods
            .into_iter()
            .filter(|p| p.iter().any(|&x| x > 0))
            .collect();
        ps.sort();
        ps.dedup();
        LinearSet { base, periods: ps }
    }

    /// Does the linear set contain `v`?
    pub fn contains(&self, v: &[u64]) -> bool {
        let dim = self.base.len();
        debug_assert_eq!(v.len(), dim);
        // remaining = v - base must be expressible as a non-negative integer
        // combination of the periods.
        let mut remaining = Vec::with_capacity(dim);
        for (&vi, &bi) in v.iter().zip(&self.base) {
            if vi < bi {
                return false;
            }
            remaining.push(vi - bi);
        }
        if remaining.iter().all(|&x| x == 0) {
            return true;
        }
        self.cover_exactly(&remaining, 0)
    }

    fn cover_exactly(&self, remaining: &[u64], idx: usize) -> bool {
        if remaining.iter().all(|&x| x == 0) {
            return true;
        }
        if idx >= self.periods.len() {
            return false;
        }
        let p = &self.periods[idx];
        // Maximum multiplicity of this period.
        let mut bound = u64::MAX;
        for (&r, &pi) in remaining.iter().zip(p) {
            if let Some(q) = r.checked_div(pi) {
                bound = bound.min(q);
            }
        }
        if bound == u64::MAX {
            bound = 0;
        }
        let mut rem = remaining.to_vec();
        for k in 0..=bound {
            if k > 0 {
                for i in 0..rem.len() {
                    rem[i] -= p[i];
                }
            }
            if self.cover_exactly(&rem, idx + 1) {
                return true;
            }
        }
        false
    }

    /// All Pareto-minimal vectors `u` in this linear set with `u ≥ lower`
    /// componentwise.
    pub fn min_extensions(&self, lower: &[u64]) -> Vec<ParikhVector> {
        let dim = self.base.len();
        debug_assert_eq!(lower.len(), dim);
        let mut results: Vec<ParikhVector> = Vec::new();
        let mut seen: BTreeSet<ParikhVector> = BTreeSet::new();
        // DFS over "helpful" period additions: each addition must increase a
        // coordinate that is still below `lower`. Every ⪯-minimal extension is
        // reachable this way (see DESIGN.md / module docs for the argument).
        let mut stack = vec![self.base.clone()];
        while let Some(current) = stack.pop() {
            if !seen.insert(current.clone()) {
                continue;
            }
            let deficient: Vec<usize> = (0..dim).filter(|&i| current[i] < lower[i]).collect();
            if deficient.is_empty() {
                results.push(current);
                continue;
            }
            for p in &self.periods {
                if deficient.iter().any(|&i| p[i] > 0) {
                    let next: ParikhVector =
                        current.iter().zip(p.iter()).map(|(a, b)| a + b).collect();
                    stack.push(next);
                }
            }
        }
        pareto_minimal(results)
    }
}

/// Keep only the componentwise-minimal vectors of a collection.
pub fn pareto_minimal(mut vs: Vec<ParikhVector>) -> Vec<ParikhVector> {
    vs.sort();
    vs.dedup();
    let mut out: Vec<ParikhVector> = Vec::new();
    for v in &vs {
        if !vs
            .iter()
            .any(|u| u != v && u.iter().zip(v.iter()).all(|(a, b)| a <= b))
        {
            out.push(v.clone());
        }
    }
    out
}

/// A semilinear set: a finite union of [`LinearSet`]s, all of the same
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemilinearSet {
    /// Vector dimension (alphabet size).
    pub dim: usize,
    /// The linear components.
    pub components: Vec<LinearSet>,
}

impl SemilinearSet {
    /// The empty set.
    pub fn empty(dim: usize) -> Self {
        SemilinearSet {
            dim,
            components: Vec::new(),
        }
    }

    /// The singleton `{0}`.
    pub fn zero(dim: usize) -> Self {
        SemilinearSet {
            dim,
            components: vec![LinearSet {
                base: vec![0; dim],
                periods: Vec::new(),
            }],
        }
    }

    /// The singleton containing the unit vector of `idx`.
    pub fn unit(dim: usize, idx: usize) -> Self {
        let mut base = vec![0; dim];
        base[idx] = 1;
        SemilinearSet {
            dim,
            components: vec![LinearSet {
                base,
                periods: Vec::new(),
            }],
        }
    }

    /// Union of two semilinear sets.
    pub fn union(&self, other: &SemilinearSet) -> SemilinearSet {
        debug_assert_eq!(self.dim, other.dim);
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        SemilinearSet {
            dim: self.dim,
            components,
        }
        .dedup()
    }

    /// Minkowski sum of two semilinear sets (concatenation of languages).
    pub fn sum(&self, other: &SemilinearSet) -> SemilinearSet {
        debug_assert_eq!(self.dim, other.dim);
        let mut components = Vec::new();
        for a in &self.components {
            for b in &other.components {
                let base = a
                    .base
                    .iter()
                    .zip(b.base.iter())
                    .map(|(x, y)| x + y)
                    .collect();
                let mut periods = a.periods.clone();
                periods.extend(b.periods.iter().cloned());
                components.push(LinearSet::normalised(base, periods));
            }
        }
        SemilinearSet {
            dim: self.dim,
            components,
        }
        .dedup()
    }

    /// Kleene star (commutative closure of language star).
    ///
    /// Uses the standard identity
    /// `π(L*) = {0} ∪ ⋃_{∅≠S⊆components} ( Σ_{i∈S} bᵢ + (⋃_{i∈S} Pᵢ ∪ {bᵢ})* )`.
    /// The number of resulting components is exponential in the number of
    /// components of `self`; DTD content models keep this small in practice.
    pub fn star(&self) -> SemilinearSet {
        let k = self.components.len();
        let mut out = SemilinearSet::zero(self.dim);
        if k == 0 {
            return out;
        }
        // Iterate over non-empty subsets of components.
        for mask in 1u64..(1u64 << k.min(63)) {
            let mut base = vec![0u64; self.dim];
            let mut periods: Vec<ParikhVector> = Vec::new();
            for (i, comp) in self.components.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    for (b, &cb) in base.iter_mut().zip(&comp.base) {
                        *b += cb;
                    }
                    periods.extend(comp.periods.iter().cloned());
                    periods.push(comp.base.clone());
                }
            }
            out.components.push(LinearSet::normalised(base, periods));
        }
        out.dedup()
    }

    fn dedup(mut self) -> SemilinearSet {
        self.components
            .sort_by(|a, b| (&a.base, &a.periods).cmp(&(&b.base, &b.periods)));
        self.components.dedup();
        self
    }

    /// Does the set contain the Parikh vector `v`?
    pub fn contains(&self, v: &[u64]) -> bool {
        self.components.iter().any(|c| c.contains(v))
    }

    /// All Pareto-minimal vectors `u` in the set with `u ≥ lower`
    /// componentwise. This is `min_ext` of Section 6.1 expressed on Parikh
    /// vectors.
    pub fn min_extensions(&self, lower: &[u64]) -> Vec<ParikhVector> {
        let mut all = Vec::new();
        for c in &self.components {
            all.extend(c.min_extensions(lower));
        }
        pareto_minimal(all)
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// Compute the Parikh image (as a [`SemilinearSet`]) of a regular expression,
/// with vector indices given by `alphabet`.
///
/// Every symbol of `regex` must be present in `alphabet`.
pub fn parikh_image<S: Alphabet>(regex: &Regex<S>, alphabet: &AlphabetMap<S>) -> SemilinearSet {
    let dim = alphabet.len();
    match regex {
        Regex::Empty => SemilinearSet::empty(dim),
        Regex::Epsilon => SemilinearSet::zero(dim),
        Regex::Symbol(s) => {
            let idx = alphabet
                .index(s)
                .expect("symbol of regex must be in the alphabet map");
            SemilinearSet::unit(dim, idx)
        }
        Regex::Concat(a, b) => parikh_image(a, alphabet).sum(&parikh_image(b, alphabet)),
        Regex::Alt(a, b) => parikh_image(a, alphabet).union(&parikh_image(b, alphabet)),
        Regex::Star(a) => parikh_image(a, alphabet).star(),
        Regex::Plus(a) => {
            let inner = parikh_image(a, alphabet);
            inner.sum(&inner.star())
        }
        Regex::Opt(a) => SemilinearSet::zero(dim).union(&parikh_image(a, alphabet)),
    }
}

/// Render the semilinear set as a Pilling normal form (Lemma 5.4): a union of
/// expressions `w₀ w₁* ⋯ w_m*`, materialising each vector as a word.
pub fn pilling_normal_form<S: Alphabet>(
    set: &SemilinearSet,
    alphabet: &AlphabetMap<S>,
) -> Vec<(Vec<S>, Vec<Vec<S>>)> {
    set.components
        .iter()
        .map(|c| {
            (
                alphabet.to_word(&c.base),
                c.periods.iter().map(|p| alphabet.to_word(p)).collect(),
            )
        })
        .collect()
}

/// Does the permutation language of `nfa` contain a word with the given
/// symbol counts? (`w ∈ π(r)` where `r` is the expression `nfa` was built
/// from and `w` any word with those counts.)
pub fn perm_accepts<S: Alphabet>(nfa: &Nfa<S>, counts: &BTreeMap<S, u64>) -> bool {
    perm_accepts_from(nfa, nfa.start(), counts)
}

/// Like [`perm_accepts`] but starting the automaton in state `q`.
///
/// This is the test `w̄ ∈ π(r_q)` used by the sibling re-ordering algorithm of
/// Proposition 5.2.
pub fn perm_accepts_from<S: Alphabet>(nfa: &Nfa<S>, q: StateId, counts: &BTreeMap<S, u64>) -> bool {
    // Any positive count on a symbol the automaton never reads is an
    // immediate rejection.
    let alphabet: BTreeSet<&S> = nfa.alphabet().iter().collect();
    for (s, &c) in counts {
        if c > 0 && !alphabet.contains(s) {
            return false;
        }
    }
    let symbols: Vec<S> = nfa.alphabet().to_vec();
    let vector: Vec<u64> = symbols
        .iter()
        .map(|s| counts.get(s).copied().unwrap_or(0))
        .collect();
    let start: Vec<StateId> = nfa
        .eps_closure(&[q].into_iter().collect())
        .into_iter()
        .collect();
    let mut memo: HashMap<(Vec<StateId>, Vec<u64>), bool> = HashMap::new();
    perm_rec(nfa, &symbols, start, vector, &mut memo)
}

fn perm_rec<S: Alphabet>(
    nfa: &Nfa<S>,
    symbols: &[S],
    states: Vec<StateId>,
    counts: Vec<u64>,
    memo: &mut HashMap<(Vec<StateId>, Vec<u64>), bool>,
) -> bool {
    if states.is_empty() {
        return false;
    }
    if counts.iter().all(|&c| c == 0) {
        return states.iter().any(|q| nfa.accepting().contains(q));
    }
    let key = (states.clone(), counts.clone());
    if let Some(&r) = memo.get(&key) {
        return r;
    }
    // Cycle-safe: mark as false while exploring (no productive cycle can make
    // it true, because every recursive call strictly decreases the total
    // count).
    memo.insert(key.clone(), false);
    let state_set: BTreeSet<StateId> = states.iter().copied().collect();
    let mut result = false;
    for (i, sym) in symbols.iter().enumerate() {
        if counts[i] == 0 {
            continue;
        }
        let next = nfa.step_closed(&state_set, sym);
        if next.is_empty() {
            continue;
        }
        let mut c2 = counts.clone();
        c2[i] -= 1;
        if perm_rec(nfa, symbols, next.into_iter().collect(), c2, memo) {
            result = true;
            break;
        }
    }
    memo.insert(key, result);
    result
}

/// Brute-force check of `w ∈ π(r)` by enumerating permutations. Exponential;
/// intended only for cross-validation in tests.
pub fn perm_accepts_bruteforce<S: Alphabet>(nfa: &Nfa<S>, word: &[S]) -> bool {
    let mut word: Vec<S> = word.to_vec();
    word.sort();
    // Heap-style permutation enumeration with dedup via sortedness.
    fn permute<S: Alphabet>(prefix: &mut Vec<S>, rest: &mut Vec<S>, nfa: &Nfa<S>) -> bool {
        if rest.is_empty() {
            return nfa.matches(prefix);
        }
        let mut i = 0;
        while i < rest.len() {
            if i > 0 && rest[i] == rest[i - 1] {
                i += 1;
                continue;
            }
            let item = rest.remove(i);
            prefix.push(item.clone());
            if permute(prefix, rest, nfa) {
                prefix.pop();
                rest.insert(i, item);
                return true;
            }
            prefix.pop();
            rest.insert(i, item);
            i += 1;
        }
        false
    }
    permute(&mut Vec::new(), &mut word, nfa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn counts(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(s, c)| (s.to_string(), *c)).collect()
    }

    fn setup(
        src: &str,
    ) -> (
        Regex<String>,
        Nfa<String>,
        AlphabetMap<String>,
        SemilinearSet,
    ) {
        let r = parse(src).unwrap();
        let nfa = Nfa::from_regex(&r);
        let am = AlphabetMap::of_regex(&r);
        let sl = parikh_image(&r, &am);
        (r, nfa, am, sl)
    }

    #[test]
    fn perm_membership_ab_star() {
        // π((ab)*) = { words with equally many a's and b's }
        let (_, nfa, _, _) = setup("(a b)*");
        assert!(perm_accepts(&nfa, &counts(&[])));
        assert!(perm_accepts(&nfa, &counts(&[("a", 2), ("b", 2)])));
        assert!(perm_accepts(&nfa, &counts(&[("b", 3), ("a", 3)])));
        assert!(!perm_accepts(&nfa, &counts(&[("a", 2), ("b", 1)])));
        assert!(!perm_accepts(&nfa, &counts(&[("c", 1)])));
    }

    #[test]
    fn perm_membership_abc_star_paper_example() {
        // π((abc)*) ∩ a*b*c* = { aⁿbⁿcⁿ } — the non-context-free example from
        // Section 5.2. Here we just check count membership.
        let (_, nfa, _, _) = setup("(a b c)*");
        assert!(perm_accepts(&nfa, &counts(&[("a", 3), ("b", 3), ("c", 3)])));
        assert!(!perm_accepts(
            &nfa,
            &counts(&[("a", 3), ("b", 3), ("c", 2)])
        ));
    }

    #[test]
    fn semilinear_agrees_with_nfa_simulation() {
        for src in [
            "(a b)*",
            "(a b c)*",
            "b c+ d* e?",
            "(b*|c*)",
            "(b c)* (d e)*",
            "a|a a b*",
            "(c d)* (c d e)*",
            "a? b? (a b)*",
        ] {
            let (_, nfa, am, sl) = setup(src);
            // enumerate all vectors up to 3 per symbol
            let dim = am.len();
            let mut stack = vec![vec![0u64; dim]];
            let mut all = Vec::new();
            while let Some(v) = stack.pop() {
                all.push(v.clone());
                for i in 0..dim {
                    if v[i] < 3 {
                        let mut u = v.clone();
                        u[i] += 1;
                        if !all.contains(&u) && !stack.contains(&u) {
                            stack.push(u);
                        }
                    }
                }
            }
            for v in all {
                let map = am.to_map(&v);
                assert_eq!(
                    sl.contains(&v),
                    perm_accepts(&nfa, &map),
                    "mismatch on {src} at {v:?}"
                );
            }
        }
    }

    #[test]
    fn nfa_simulation_agrees_with_bruteforce() {
        for src in ["(a b)*", "b c+ d* e?", "a|a a b*", "(b c)* (d e)*"] {
            let (_, nfa, am, _) = setup(src);
            let dim = am.len();
            let mut vectors = vec![vec![0u64; dim]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for v in &vectors {
                    for i in 0..dim {
                        let mut u = v.clone();
                        u[i] += 1;
                        next.push(u);
                    }
                }
                vectors.extend(next);
            }
            vectors.sort();
            vectors.dedup();
            for v in vectors {
                let word = am.to_word(&v);
                let map = am.to_map(&v);
                assert_eq!(
                    perm_accepts(&nfa, &map),
                    perm_accepts_bruteforce(&nfa, &word),
                    "mismatch on {src} at {v:?}"
                );
            }
        }
    }

    #[test]
    fn min_extensions_bbc_example() {
        // min_ext(b, (bbc)*) = {bbc} (as count vectors): the example from
        // Section 6.1.
        let (_, _, am, sl) = setup("(b b c)*");
        let lower = am.counts_of_word(&["b".to_string()]).unwrap();
        let exts = sl.min_extensions(&lower);
        assert_eq!(exts.len(), 1);
        assert_eq!(am.to_map(&exts[0]), counts(&[("b", 2), ("c", 1)]));
    }

    #[test]
    fn min_extensions_bb_bcplus_is_empty_above_bb() {
        // min_ext(bb, bc+) = ∅ : no word of bc+ has two b's.
        let (_, _, am, sl) = setup("b c+");
        let lower = am
            .counts_of_word(&["b".to_string(), "b".to_string()])
            .unwrap();
        assert!(sl.min_extensions(&lower).is_empty());
    }

    #[test]
    fn min_extensions_cc_example() {
        // rep(cc, (cd)*(cde)*) discussion: min extensions of cc itself are
        // {ccdd, ccdde}? — minimal vectors ≥ (c:2) in π((cd)*(cde)*):
        // c=2,d=2 (from (cd)²) and c=2,d=2,e=... wait (cd)(cde) = c2 d2 e1 ≥ it,
        // so only c2d2 is minimal.
        let (_, _, am, sl) = setup("(c d)* (c d e)*");
        let lower = am.counts_of_map(&counts(&[("c", 2)])).unwrap();
        let exts = sl.min_extensions(&lower);
        assert_eq!(exts.len(), 1);
        assert_eq!(am.to_map(&exts[0]), counts(&[("c", 2), ("d", 2)]));
    }

    #[test]
    fn pilling_normal_form_has_expected_shape() {
        let (_, _, am, sl) = setup("(a b)*");
        let pnf = pilling_normal_form(&sl, &am);
        // {0} plus one component with base ab and period ab.
        assert!(pnf.iter().any(|(base, _)| base.is_empty()));
        assert!(pnf
            .iter()
            .any(|(base, periods)| base.len() == 2 && periods.iter().any(|p| p.len() == 2)));
    }

    #[test]
    fn empty_and_epsilon_images() {
        let am: AlphabetMap<String> = AlphabetMap::new(["a".to_string()]);
        let empty = parikh_image(&Regex::<String>::Empty, &am);
        assert!(empty.is_empty());
        let eps = parikh_image(&Regex::<String>::Epsilon, &am);
        assert!(eps.contains(&[0]));
        assert!(!eps.contains(&[1]));
    }

    #[test]
    fn perm_accepts_from_mid_state() {
        // For a b: after reading "a" there must be a state from which the
        // remaining multiset {b} is accepted, but not {a}.
        let (_, nfa, _, _) = setup("a b");
        let start = nfa.eps_closure(&[nfa.start()].into_iter().collect());
        let after_a = nfa.step_closed(&start, &"a".to_string());
        assert!(after_a
            .iter()
            .any(|&q| perm_accepts_from(&nfa, q, &counts(&[("b", 1)]))));
        assert!(!after_a
            .iter()
            .any(|&q| perm_accepts_from(&nfa, q, &counts(&[("a", 1)]))));
    }
}
