//! Evaluation of tree-pattern formulae over XML trees.
//!
//! Following Section 3.1: a pattern `ϕ(x̄)` holds in a tree `T` under a value
//! assignment `σ` iff *some* node of `T` is a witness for `ϕ(σ(x̄))`. The
//! functions here compute all assignments (over the pattern's free variables)
//! for which a witness exists, which is what both source-side STD evaluation
//! and target-side query evaluation need.

use crate::pattern::{AttrFormula, Term, TreePattern, Var};
use std::collections::BTreeMap;
use xdx_xmltree::{NodeId, Value, XmlTree};

/// A (partial) assignment of values to variables.
pub type Assignment = BTreeMap<Var, Value>;

/// Merge two assignments; `None` if they disagree on a shared variable.
pub fn merge_assignments(a: &Assignment, b: &Assignment) -> Option<Assignment> {
    let mut out = a.clone();
    for (k, v) in b {
        match out.get(k) {
            Some(existing) if existing != v => return None,
            _ => {
                out.insert(k.clone(), v.clone());
            }
        }
    }
    Some(out)
}

/// All assignments under which `node` is a witness for `pattern`.
pub fn matches_at(tree: &XmlTree, node: NodeId, pattern: &TreePattern) -> Vec<Assignment> {
    match pattern {
        TreePattern::Node { attr, children } => {
            let Some(base) = match_attr_formula(tree, node, attr) else {
                return Vec::new();
            };
            let mut partials = vec![base];
            for child_pattern in children {
                let mut next: Vec<Assignment> = Vec::new();
                for partial in &partials {
                    for &child in tree.children(node) {
                        for m in matches_at(tree, child, child_pattern) {
                            if let Some(merged) = merge_assignments(partial, &m) {
                                if !next.contains(&merged) {
                                    next.push(merged);
                                }
                            }
                        }
                    }
                }
                partials = next;
                if partials.is_empty() {
                    return Vec::new();
                }
            }
            partials
        }
        TreePattern::Descendant(inner) => {
            let mut out: Vec<Assignment> = Vec::new();
            for d in tree.descendants(node) {
                for m in matches_at(tree, d, inner) {
                    if !out.contains(&m) {
                        out.push(m);
                    }
                }
            }
            out
        }
    }
}

fn match_attr_formula(tree: &XmlTree, node: NodeId, attr: &AttrFormula) -> Option<Assignment> {
    if !attr.label.accepts(tree.label(node)) {
        return None;
    }
    let mut assignment = Assignment::new();
    for binding in &attr.bindings {
        let value = tree.attr(node, &binding.attr)?;
        match &binding.term {
            Term::Const(expected) => {
                if value.as_const() != Some(expected.as_str()) {
                    return None;
                }
            }
            Term::Var(var) => match assignment.get(var) {
                Some(existing) if existing != value => return None,
                _ => {
                    assignment.insert(var.clone(), value.clone());
                }
            },
        }
    }
    Some(assignment)
}

/// All assignments (over the free variables of `pattern`) under which some
/// node of `tree` witnesses the pattern — i.e. the relation `ϕ(T)`.
///
/// Runs on the join-ordered planned evaluator ([`crate::plan`]), planning
/// the pattern DTD-less per call; hold a [`crate::plan::PatternPlan`] and a
/// per-tree [`crate::plan::TreeIndex`] to amortise the planning across many
/// evaluations. The original enumerate-then-merge evaluator is kept as
/// [`all_matches_reference`] — the differential-testing oracle.
pub fn all_matches(tree: &XmlTree, pattern: &TreePattern) -> Vec<Assignment> {
    let plan = crate::plan::PatternPlan::without_dtd(pattern);
    let index = crate::plan::TreeIndex::without_dtd(tree);
    plan.all_matches(tree, &index)
}

/// Reference implementation of [`all_matches`]: enumerate every node and
/// merge recursively through [`matches_at`], deduplicating by linear scans.
/// Kept verbatim as the oracle the planned evaluator is differential-tested
/// against (`tests/pattern_differential.rs`).
pub fn all_matches_reference(tree: &XmlTree, pattern: &TreePattern) -> Vec<Assignment> {
    let mut out: Vec<Assignment> = Vec::new();
    for node in tree.nodes() {
        for m in matches_at(tree, node, pattern) {
            if !out.contains(&m) {
                out.push(m);
            }
        }
    }
    out
}

/// Does `T ⊨ ϕ(σ)` hold for a (total) assignment `σ` of the free variables?
///
/// Variables of the pattern missing from `σ` are treated existentially.
pub fn holds(tree: &XmlTree, pattern: &TreePattern, assignment: &Assignment) -> bool {
    holds_in(&all_matches(tree, pattern), assignment)
}

/// As [`holds`], on the reference evaluator — used by the `*_reference`
/// pipeline functions in `xdx-core` so they stay a frozen baseline.
pub fn holds_reference(tree: &XmlTree, pattern: &TreePattern, assignment: &Assignment) -> bool {
    holds_in(&all_matches_reference(tree, pattern), assignment)
}

fn holds_in(matches: &[Assignment], assignment: &Assignment) -> bool {
    matches.iter().any(|m| {
        m.iter().all(|(var, value)| match assignment.get(var) {
            Some(expected) => expected == value,
            None => true,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use xdx_xmltree::TreeBuilder;

    fn figure1_tree() -> XmlTree {
        TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "Combinatorial Optimization")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
                    .child("author", |a| {
                        a.attr("@name", "Steiglitz").attr("@aff", "Princeton")
                    })
            })
            .child("book", |b| {
                b.attr("@title", "Computational Complexity")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
            })
            .build()
    }

    fn get<'a>(a: &'a Assignment, v: &str) -> &'a Value {
        a.get(&Var::new(v)).expect("variable bound")
    }

    #[test]
    fn example_from_section_3_1() {
        // ψ(x, y) = book(@title = x)[author(@name = y)] is true iff x is a
        // title and y one of its authors.
        let t = figure1_tree();
        let p = parse_pattern("book(@title=$x)[author(@name=$y)]").unwrap();
        let matches = all_matches(&t, &p);
        assert_eq!(matches.len(), 3);
        let pairs: Vec<(String, String)> = matches
            .iter()
            .map(|m| {
                (
                    get(m, "x").as_const().unwrap().to_string(),
                    get(m, "y").as_const().unwrap().to_string(),
                )
            })
            .collect();
        assert!(pairs.contains(&(
            "Combinatorial Optimization".to_string(),
            "Papadimitriou".to_string()
        )));
        assert!(pairs.contains(&(
            "Combinatorial Optimization".to_string(),
            "Steiglitz".to_string()
        )));
        assert!(pairs.contains(&(
            "Computational Complexity".to_string(),
            "Papadimitriou".to_string()
        )));
    }

    #[test]
    fn patterns_are_not_root_anchored_by_default() {
        // author(@name=$y) matches at author nodes even though they are deep
        // in the tree.
        let t = figure1_tree();
        let p = parse_pattern("author(@name=$y)").unwrap();
        assert_eq!(all_matches(&t, &p).len(), 2); // two distinct names
    }

    #[test]
    fn descendant_requires_a_proper_descendant() {
        let t = figure1_tree();
        // //author is witnessed at db and book nodes (their descendants
        // include authors) but the top-level semantics only asks for
        // existence of a witness.
        let p = parse_pattern("//author").unwrap();
        assert!(!all_matches(&t, &p).is_empty());
        // db[//db] cannot hold: db has no proper descendant labelled db.
        let q = parse_pattern("db[//db]").unwrap();
        assert!(all_matches(&t, &q).is_empty());
        // db[//author(@aff=$a)] binds affiliations reachable below a child.
        let r = parse_pattern("db[//author(@aff=$a)]").unwrap();
        let ms = all_matches(&t, &r);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn wildcard_matches_any_label() {
        let t = figure1_tree();
        let p = parse_pattern("_(@name=$n)").unwrap();
        assert_eq!(all_matches(&t, &p).len(), 2);
        let q = parse_pattern("db[_[_(@aff=$a)]]").unwrap();
        assert_eq!(all_matches(&t, &q).len(), 2);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        // _(@name=$v, @aff=$v) requires the two attributes to be equal: never
        // true in Figure 1.
        let t = figure1_tree();
        let p = parse_pattern("_(@name=$v, @aff=$v)").unwrap();
        assert!(all_matches(&t, &p).is_empty());

        let mut t2 = XmlTree::new("r");
        let n = t2.add_child(t2.root(), "l");
        t2.set_attr(n, "@a1", "same");
        t2.set_attr(n, "@a2", "same");
        let q = parse_pattern("l(@a1=$z, @a2=$z)").unwrap();
        assert_eq!(all_matches(&t2, &q).len(), 1);
    }

    #[test]
    fn constants_filter_matches() {
        let t = figure1_tree();
        let p =
            parse_pattern("book(@title=\"Computational Complexity\")[author(@name=$y)]").unwrap();
        let ms = all_matches(&t, &p);
        assert_eq!(ms.len(), 1);
        assert_eq!(get(&ms[0], "y").as_const(), Some("Papadimitriou"));
        let none = parse_pattern("book(@title=\"No Such Book\")").unwrap();
        assert!(all_matches(&t, &none).is_empty());
    }

    #[test]
    fn missing_attribute_means_no_match() {
        let t = figure1_tree();
        let p = parse_pattern("book(@year=$y)").unwrap();
        assert!(all_matches(&t, &p).is_empty());
    }

    #[test]
    fn multiple_child_patterns_may_share_a_witness_child() {
        // db[book(@title=$x), book(@title=$y)] — the two sub-patterns may be
        // witnessed by the same child, so x = y is among the matches.
        let t = figure1_tree();
        let p = parse_pattern("db[book(@title=$x), book(@title=$y)]").unwrap();
        let ms = all_matches(&t, &p);
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().any(|m| get(m, "x") == get(m, "y")));
        assert!(ms.iter().any(|m| get(m, "x") != get(m, "y")));
    }

    #[test]
    fn holds_with_total_and_partial_assignments() {
        let t = figure1_tree();
        let p = parse_pattern("book(@title=$x)[author(@name=$y)]").unwrap();
        let mut sigma = Assignment::new();
        sigma.insert(Var::new("x"), Value::constant("Computational Complexity"));
        sigma.insert(Var::new("y"), Value::constant("Papadimitriou"));
        assert!(holds(&t, &p, &sigma));
        sigma.insert(Var::new("y"), Value::constant("Steiglitz"));
        assert!(!holds(&t, &p, &sigma));
        // partial assignment: y existential
        let mut partial = Assignment::new();
        partial.insert(Var::new("x"), Value::constant("Combinatorial Optimization"));
        assert!(holds(&t, &p, &partial));
    }

    #[test]
    fn matches_at_specific_nodes() {
        let t = figure1_tree();
        let book1 = t.children(t.root())[0];
        let book2 = t.children(t.root())[1];
        let p = parse_pattern("book(@title=$x)").unwrap();
        assert_eq!(matches_at(&t, book1, &p).len(), 1);
        assert_eq!(matches_at(&t, book2, &p).len(), 1);
        assert!(matches_at(&t, t.root(), &p).is_empty());
    }

    #[test]
    fn null_values_bind_like_any_other_value() {
        use xdx_xmltree::{NullGen, Value};
        let mut t = XmlTree::new("bib");
        let mut gen = NullGen::new();
        let w = t.add_child(t.root(), "work");
        let null = gen.fresh_value();
        t.set_attr(w, "@year", null.clone());
        let p = parse_pattern("work(@year=$y)").unwrap();
        let ms = all_matches(&t, &p);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(&Var::new("y")), Some(&null));
        assert!(!Value::is_const(&ms[0][&Var::new("y")]));
    }
}
