//! # xdx-patterns — tree-pattern formulae and conjunctive tree queries
//!
//! The query substrate of the XML data exchange library reproducing
//! Arenas & Libkin, *"XML Data Exchange: Consistency and Query Answering"*
//! (PODS 2005 / JACM 2008).
//!
//! Section 3.1 of the paper defines *attribute formulae* and *tree-pattern
//! formulae*:
//!
//! ```text
//! α ::= ℓ  |  ℓ(@a1 = x1, …, @an = xn)          (ℓ ∈ E ∪ {_})
//! ϕ ::= α  |  α[ϕ, …, ϕ]  |  //ϕ
//! ```
//!
//! A pattern is true in a tree when *some* node witnesses it; `α[ϕ1,…,ϕk]`
//! requires (not necessarily distinct) children witnessing each `ϕi`, and
//! `//ϕ` requires a proper descendant witnessing `ϕ`. Variables range over
//! attribute values.
//!
//! Section 5 builds conjunctive tree queries on top: `CTQ` (conjunction and
//! existential quantification of patterns without descendant), `CTQ//`
//! (with descendant) and their unions `CTQ∪`, `CTQ//,∪`.
//!
//! This crate provides:
//!
//! * [`pattern`] — the pattern AST, classification predicates (fully
//!   specified, path patterns, wildcard/descendant usage) and the attribute
//!   erasure `ϕ°` of Claim 4.2;
//! * [`parser`] — a compact text syntax used by tests, examples and gadgets
//!   (`db[book(@title=$x)[author(@name=$y)]]`);
//! * [`eval`] — pattern matching over [`xdx_xmltree::XmlTree`]s, producing
//!   variable assignments;
//! * [`query`] — conjunctive tree queries and unions with set semantics
//!   evaluation;
//! * [`homomorphism`] — homomorphisms between XML trees (Lemma 6.14), the
//!   tool behind the correctness of canonical solutions;
//! * [`compiled`] — the interned-symbol fast path: patterns resolved once
//!   against a [`xdx_xmltree::CompiledDtd`] so evaluation compares dense
//!   `u32` symbols instead of strings (differential-tested against
//!   [`eval`]);
//! * [`plan`] — the join-ordered planned evaluator: per-node candidate sets
//!   from a one-pass label index of the tree, child/descendant edges joined
//!   in ascending cardinality order, hashed-assignment dedup. This is what
//!   [`eval::all_matches`] and the compiled layer actually run;
//!   [`eval::all_matches_reference`] stays as the oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod eval;
pub mod homomorphism;
pub mod parser;
pub mod pattern;
pub mod plan;
pub mod query;

pub use compiled::{all_matches_compiled, holds_in_matches, CompiledPattern, InternedLabels};
pub use eval::{all_matches, all_matches_reference, holds, matches_at, Assignment};
pub use homomorphism::{find_homomorphism, is_homomorphism, Homomorphism};
pub use parser::{parse_pattern, parse_query, PatternParseError, QueryParseError};
pub use pattern::{AttrBinding, AttrFormula, LabelTest, Term, TreePattern, Var};
pub use plan::{PatternPlan, QueryPlan, TreeIndex};
pub use query::{ConjunctiveTreeQuery, QueryClass, UnionQuery};
