//! Conjunctive tree queries and their unions (Section 5).
//!
//! The query language `CTQ//` is the closure of tree-pattern formulae under
//! conjunction and existential quantification:
//!
//! ```text
//! Q ::= ϕ | Q ∧ Q | ∃x Q
//! ```
//!
//! Disallowing descendant gives `CTQ`; closing under union gives `CTQ∪` and
//! `CTQ//,∪`. A query evaluates to a set of tuples of attribute values (its
//! head), which is what the certain-answer semantics of data exchange needs.

use crate::eval::{all_matches, merge_assignments, Assignment};
use crate::pattern::{TreePattern, Var};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use xdx_xmltree::{Value, XmlTree};

/// The syntactic class of a query, following the paper's naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Conjunctive tree queries without descendant (`CTQ`).
    Ctq,
    /// Conjunctive tree queries with descendant (`CTQ//`).
    CtqDescendant,
    /// Unions of conjunctive tree queries without descendant (`CTQ∪`).
    CtqUnion,
    /// Unions of conjunctive tree queries with descendant (`CTQ//,∪`).
    CtqDescendantUnion,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryClass::Ctq => "CTQ",
            QueryClass::CtqDescendant => "CTQ//",
            QueryClass::CtqUnion => "CTQ∪",
            QueryClass::CtqDescendantUnion => "CTQ//,∪",
        };
        write!(f, "{s}")
    }
}

/// Errors raised when constructing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A head (output) variable does not occur in any pattern of the body.
    UnboundHeadVariable {
        /// The offending variable.
        var: Var,
    },
    /// The branches of a union have different head arities.
    MismatchedArity {
        /// Arity of the first branch.
        expected: usize,
        /// Arity of the offending branch.
        found: usize,
    },
    /// A union with no branches.
    EmptyUnion,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundHeadVariable { var } => {
                write!(f, "head variable {var} does not occur in the query body")
            }
            QueryError::MismatchedArity { expected, found } => {
                write!(
                    f,
                    "union branches have different arities: {expected} vs {found}"
                )
            }
            QueryError::EmptyUnion => write!(f, "a union query must have at least one branch"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A conjunctive tree query: a conjunction of tree patterns with a tuple of
/// output (free) variables; all other variables are existentially
/// quantified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveTreeQuery {
    head: Vec<Var>,
    patterns: Vec<TreePattern>,
}

impl ConjunctiveTreeQuery {
    /// Build a query with the given head variables and body patterns.
    pub fn new<V: Into<Var>>(
        head: impl IntoIterator<Item = V>,
        patterns: Vec<TreePattern>,
    ) -> Result<Self, QueryError> {
        let head: Vec<Var> = head.into_iter().map(Into::into).collect();
        let mut body_vars: BTreeSet<Var> = BTreeSet::new();
        for p in &patterns {
            body_vars.extend(p.free_vars());
        }
        for v in &head {
            if !body_vars.contains(v) {
                return Err(QueryError::UnboundHeadVariable { var: v.clone() });
            }
        }
        Ok(ConjunctiveTreeQuery { head, patterns })
    }

    /// A Boolean query (empty head).
    pub fn boolean(patterns: Vec<TreePattern>) -> Self {
        ConjunctiveTreeQuery {
            head: Vec::new(),
            patterns,
        }
    }

    /// The head (output) variables.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// The body patterns.
    pub fn patterns(&self) -> &[TreePattern] {
        &self.patterns
    }

    /// Is this a Boolean query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Does the query use the descendant axis?
    pub fn uses_descendant(&self) -> bool {
        self.patterns.iter().any(|p| p.uses_descendant())
    }

    /// Does the query use the wildcard?
    pub fn uses_wildcard(&self) -> bool {
        self.patterns.iter().any(|p| p.uses_wildcard())
    }

    /// The syntactic class of the query (`CTQ` or `CTQ//`).
    pub fn class(&self) -> QueryClass {
        if self.uses_descendant() {
            QueryClass::CtqDescendant
        } else {
            QueryClass::Ctq
        }
    }

    /// A size measure (total pattern size plus head arity).
    pub fn size(&self) -> usize {
        self.head.len() + self.patterns.iter().map(|p| p.size()).sum::<usize>()
    }

    /// Evaluate the query over a tree, returning the set of head tuples.
    ///
    /// For a Boolean query the result is either `{()}` (true: one empty
    /// tuple) or `{}` (false).
    pub fn evaluate(&self, tree: &XmlTree) -> BTreeSet<Vec<Value>> {
        let mut assignments: Vec<Assignment> = vec![Assignment::new()];
        for pattern in &self.patterns {
            let relation = all_matches(tree, pattern);
            let mut next: Vec<Assignment> = Vec::new();
            let mut seen: HashSet<Vec<(Var, Value)>> = HashSet::new();
            for a in &assignments {
                for b in &relation {
                    if let Some(merged) = merge_assignments(a, b) {
                        let key: Vec<(Var, Value)> =
                            merged.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                        if seen.insert(key) {
                            next.push(merged);
                        }
                    }
                }
            }
            assignments = next;
            if assignments.is_empty() {
                return BTreeSet::new();
            }
        }
        assignments
            .into_iter()
            .map(|a| {
                self.head
                    .iter()
                    .map(|v| {
                        a.get(v)
                            .cloned()
                            .expect("head variable bound by construction")
                    })
                    .collect()
            })
            .collect()
    }

    /// Evaluate a Boolean query.
    pub fn evaluate_boolean(&self, tree: &XmlTree) -> bool {
        !self.evaluate(tree).is_empty()
    }
}

impl fmt::Display for ConjunctiveTreeQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.head.iter().map(|v| v.to_string()).collect();
        let body: Vec<String> = self.patterns.iter().map(|p| p.to_string()).collect();
        write!(f, "({}) :- {}", head.join(", "), body.join(" ∧ "))
    }
}

/// A union of conjunctive tree queries (all branches with the same arity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    branches: Vec<ConjunctiveTreeQuery>,
}

impl UnionQuery {
    /// Build a union query; all branches must have the same arity.
    pub fn new(branches: Vec<ConjunctiveTreeQuery>) -> Result<Self, QueryError> {
        let Some(first) = branches.first() else {
            return Err(QueryError::EmptyUnion);
        };
        let expected = first.arity();
        for b in &branches {
            if b.arity() != expected {
                return Err(QueryError::MismatchedArity {
                    expected,
                    found: b.arity(),
                });
            }
        }
        Ok(UnionQuery { branches })
    }

    /// A union with a single branch.
    pub fn single(q: ConjunctiveTreeQuery) -> Self {
        UnionQuery { branches: vec![q] }
    }

    /// The branches of the union.
    pub fn branches(&self) -> &[ConjunctiveTreeQuery] {
        &self.branches
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.branches.first().map(|b| b.arity()).unwrap_or(0)
    }

    /// Is this a Boolean query?
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// Does any branch use the descendant axis?
    pub fn uses_descendant(&self) -> bool {
        self.branches.iter().any(|b| b.uses_descendant())
    }

    /// The syntactic class of the query.
    pub fn class(&self) -> QueryClass {
        match (self.branches.len() > 1, self.uses_descendant()) {
            (false, false) => QueryClass::Ctq,
            (false, true) => QueryClass::CtqDescendant,
            (true, false) => QueryClass::CtqUnion,
            (true, true) => QueryClass::CtqDescendantUnion,
        }
    }

    /// Evaluate the union over a tree.
    pub fn evaluate(&self, tree: &XmlTree) -> BTreeSet<Vec<Value>> {
        let mut out = BTreeSet::new();
        for b in &self.branches {
            out.extend(b.evaluate(tree));
        }
        out
    }

    /// Evaluate a Boolean union query.
    pub fn evaluate_boolean(&self, tree: &XmlTree) -> bool {
        self.branches.iter().any(|b| b.evaluate_boolean(tree))
    }

    /// A size measure.
    pub fn size(&self) -> usize {
        self.branches.iter().map(|b| b.size()).sum()
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.branches.iter().map(|b| b.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use xdx_xmltree::TreeBuilder;

    fn figure2_tree() -> XmlTree {
        use xdx_xmltree::{NullGen, XmlTree};
        // The target document of Figure 2(b), with ⊥1 shared between the two
        // "Combinatorial Optimization" works and ⊥2 on the other one.
        let mut gen = NullGen::new();
        let n1 = gen.fresh_value();
        let n2 = gen.fresh_value();
        let mut t = XmlTree::new("bib");
        let w1 = t.add_child(t.root(), "writer");
        t.set_attr(w1, "@name", "Papadimitriou");
        let k1 = t.add_child(w1, "work");
        t.set_attr(k1, "@title", "Combinatorial Optimization");
        t.set_attr(k1, "@year", n1.clone());
        let k2 = t.add_child(w1, "work");
        t.set_attr(k2, "@title", "Computational Complexity");
        t.set_attr(k2, "@year", n2);
        let w2 = t.add_child(t.root(), "writer");
        t.set_attr(w2, "@name", "Steiglitz");
        let k3 = t.add_child(w2, "work");
        t.set_attr(k3, "@title", "Combinatorial Optimization");
        t.set_attr(k3, "@year", n1);
        t
    }

    #[test]
    fn who_wrote_computational_complexity() {
        // The introduction's query: who is the writer of the work named
        // "Computational Complexity"?
        let t = figure2_tree();
        let q = ConjunctiveTreeQuery::new(
            ["w"],
            vec![
                parse_pattern("writer(@name=$w)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap();
        let result = q.evaluate(&t);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.iter().next().unwrap()[0],
            Value::constant("Papadimitriou")
        );
    }

    #[test]
    fn works_written_in_a_year_returns_nulls() {
        // "What are the works written in 1994?" cannot be answered with
        // certainty; over this particular tree the year attributes are nulls,
        // so selecting a constant year returns nothing.
        let t = figure2_tree();
        let q = ConjunctiveTreeQuery::new(
            ["t"],
            vec![parse_pattern("work(@title=$t, @year=\"1994\")").unwrap()],
        )
        .unwrap();
        assert!(q.evaluate(&t).is_empty());
        // projecting the year returns null values (to be filtered by the
        // certain-answer layer)
        let q2 = ConjunctiveTreeQuery::new(["y"], vec![parse_pattern("work(@year=$y)").unwrap()])
            .unwrap();
        let years = q2.evaluate(&t);
        assert_eq!(years.len(), 2);
        assert!(years.iter().all(|row| row[0].is_null()));
    }

    #[test]
    fn conjunction_joins_on_shared_variables() {
        // Writers x and y of a common work title z.
        let t = figure2_tree();
        let q = ConjunctiveTreeQuery::new(
            ["x", "y"],
            vec![
                parse_pattern("writer(@name=$x)[work(@title=$z)]").unwrap(),
                parse_pattern("writer(@name=$y)[work(@title=$z)]").unwrap(),
            ],
        )
        .unwrap();
        let result = q.evaluate(&t);
        // Pairs sharing a title: (P,P) via both titles, (S,S), (P,S), (S,P).
        assert_eq!(result.len(), 4);
        assert!(result.contains(&vec![
            Value::constant("Papadimitriou"),
            Value::constant("Steiglitz")
        ]));
    }

    #[test]
    fn boolean_queries() {
        let t = figure2_tree();
        let yes =
            ConjunctiveTreeQuery::boolean(vec![
                parse_pattern("bib[writer(@name=\"Steiglitz\")]").unwrap()
            ]);
        assert!(yes.evaluate_boolean(&t));
        assert_eq!(yes.evaluate(&t).len(), 1); // one empty tuple
        let no = ConjunctiveTreeQuery::boolean(vec![
            parse_pattern("bib[writer(@name=\"Knuth\")]").unwrap()
        ]);
        assert!(!no.evaluate_boolean(&t));
        assert!(yes.is_boolean() && no.is_boolean());
    }

    #[test]
    fn union_queries_union_results_and_check_arity() {
        let t = figure2_tree();
        let q1 = ConjunctiveTreeQuery::new(
            ["n"],
            vec![
                parse_pattern("writer(@name=$n)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap();
        let q2 = ConjunctiveTreeQuery::new(
            ["n"],
            vec![
                parse_pattern("writer(@name=$n)[work(@title=\"Combinatorial Optimization\")]")
                    .unwrap(),
            ],
        )
        .unwrap();
        let u = UnionQuery::new(vec![q1.clone(), q2]).unwrap();
        assert_eq!(u.evaluate(&t).len(), 2);
        assert_eq!(u.class(), QueryClass::CtqUnion);

        let bad = UnionQuery::new(vec![
            q1,
            ConjunctiveTreeQuery::boolean(vec![parse_pattern("bib").unwrap()]),
        ]);
        assert!(matches!(bad, Err(QueryError::MismatchedArity { .. })));
        assert!(matches!(
            UnionQuery::new(vec![]),
            Err(QueryError::EmptyUnion)
        ));
    }

    #[test]
    fn query_classes() {
        let ctq =
            ConjunctiveTreeQuery::new(["x"], vec![parse_pattern("writer(@name=$x)").unwrap()])
                .unwrap();
        assert_eq!(ctq.class(), QueryClass::Ctq);
        let ctq_desc =
            ConjunctiveTreeQuery::new(["x"], vec![parse_pattern("//work(@title=$x)").unwrap()])
                .unwrap();
        assert_eq!(ctq_desc.class(), QueryClass::CtqDescendant);
        let u = UnionQuery::new(vec![ctq.clone(), ctq_desc]).unwrap();
        assert_eq!(u.class(), QueryClass::CtqDescendantUnion);
        assert_eq!(UnionQuery::single(ctq).class(), QueryClass::Ctq);
    }

    #[test]
    fn unbound_head_variable_is_rejected() {
        let err =
            ConjunctiveTreeQuery::new(["ghost"], vec![parse_pattern("writer(@name=$x)").unwrap()])
                .unwrap_err();
        assert!(matches!(err, QueryError::UnboundHeadVariable { .. }));
    }

    #[test]
    fn evaluation_over_empty_and_tiny_trees() {
        let t = TreeBuilder::new("bib").build();
        let q = ConjunctiveTreeQuery::new(["x"], vec![parse_pattern("writer(@name=$x)").unwrap()])
            .unwrap();
        assert!(q.evaluate(&t).is_empty());
        let b = ConjunctiveTreeQuery::boolean(vec![parse_pattern("bib").unwrap()]);
        assert!(b.evaluate_boolean(&t));
    }

    #[test]
    fn display_shows_rule_like_syntax() {
        let q = ConjunctiveTreeQuery::new(["x"], vec![parse_pattern("writer(@name=$x)").unwrap()])
            .unwrap();
        let s = q.to_string();
        assert!(s.contains(":-"));
        assert!(s.contains("$x"));
    }
}
