//! A compact text syntax for tree-pattern formulae.
//!
//! ```text
//! pattern  ::= '//' pattern
//!            | attrform ( '[' pattern (',' pattern)* ']' )?
//! attrform ::= label ( '(' binding (',' binding)* ')' )?
//! label    ::= IDENT | '_'
//! binding  ::= ATTR '=' term
//! term     ::= '$' IDENT            (variable)
//!            | '"' characters '"'   (constant)
//! ```
//!
//! Examples (all from the paper):
//!
//! * `db[book(@title=$x)[author(@name=$y)]]`
//! * `bib[writer(@name=$y)[work(@title=$x, @year=$z)]]`
//! * `//vr[q1[yes]]`
//! * `_(@a1=$x, @a2=$x)`

use crate::pattern::{AttrBinding, AttrFormula, LabelTest, Term, TreePattern, Var};
use crate::query::{ConjunctiveTreeQuery, QueryError, UnionQuery};
use std::fmt;
use xdx_xmltree::{AttrName, ElementType};

/// Error raised by [`parse_pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PatternParseError {}

/// Error raised by [`parse_query`]: either the text does not parse, or it
/// parses into a structurally invalid query (unbound head variable,
/// mismatched union arities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// A syntax error at some byte position.
    Syntax(PatternParseError),
    /// The parsed query violates a construction rule of
    /// [`crate::query::ConjunctiveTreeQuery`] / [`crate::query::UnionQuery`].
    Invalid(QueryError),
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryParseError::Syntax(e) => write!(f, "{e}"),
            QueryParseError::Invalid(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for QueryParseError {}

impl From<PatternParseError> for QueryParseError {
    fn from(e: PatternParseError) -> Self {
        QueryParseError::Syntax(e)
    }
}

impl From<QueryError> for QueryParseError {
    fn from(e: QueryError) -> Self {
        QueryParseError::Invalid(e)
    }
}

/// Parse a tree-pattern formula from its text syntax.
pub fn parse_pattern(input: &str) -> Result<TreePattern, PatternParseError> {
    let mut p = Parser { input, pos: 0 };
    let pat = p.parse_pattern()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(pat)
}

/// Parse a (union of) conjunctive tree queries from the rule-like syntax the
/// `Display` impls of [`ConjunctiveTreeQuery`] and [`UnionQuery`] print:
///
/// ```text
/// query  ::= branch ( ('∪' | '|') branch )*
/// branch ::= '(' ( var (',' var)* )? ')' ':-' pattern ( ('∧' | '&') pattern )*
/// var    ::= '$' IDENT
/// ```
///
/// `()` is a Boolean head. The ASCII aliases `|` and `&` are accepted so
/// queries can be written without Unicode; the pretty-printed form
/// round-trips: `parse_query(&q.to_string())` reconstructs `q` whenever its
/// constants contain no `"` or `\` (the pattern syntax has no escapes).
///
/// ```
/// use xdx_patterns::parser::parse_query;
/// let q = parse_query("($w) :- writer(@name=$w)[work(@title=$t)] & work(@title=$t)").unwrap();
/// assert_eq!(q.arity(), 1);
/// let round = parse_query(&q.to_string()).unwrap();
/// assert_eq!(q, round);
/// ```
pub fn parse_query(input: &str) -> Result<UnionQuery, QueryParseError> {
    let mut p = Parser { input, pos: 0 };
    let mut branches = vec![p.parse_branch()?];
    while p.eat('∪') || p.eat('|') {
        branches.push(p.parse_branch()?);
    }
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.error("unexpected trailing input").into());
    }
    Ok(UnionQuery::new(branches)?)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> PatternParseError {
        PatternParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), PatternParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {c:?}")))
        }
    }

    /// One union branch: `(head vars) :- pattern ∧ … ∧ pattern`.
    fn parse_branch(&mut self) -> Result<ConjunctiveTreeQuery, QueryParseError> {
        self.expect('(')?;
        let mut head: Vec<Var> = Vec::new();
        if !self.eat(')') {
            loop {
                self.expect('$')?;
                head.push(Var::new(self.parse_ident()?));
                if self.eat(',') {
                    continue;
                }
                self.expect(')')?;
                break;
            }
        }
        self.skip_ws();
        if !self.rest().starts_with(":-") {
            return Err(self.error("expected ':-' after the query head").into());
        }
        self.pos += 2;
        let mut patterns = vec![self.parse_pattern()?];
        while self.eat('∧') || self.eat('&') {
            patterns.push(self.parse_pattern()?);
        }
        Ok(ConjunctiveTreeQuery::new(head, patterns)?)
    }

    fn parse_pattern(&mut self) -> Result<TreePattern, PatternParseError> {
        self.skip_ws();
        if self.rest().starts_with("//") {
            self.pos += 2;
            let inner = self.parse_pattern()?;
            return Ok(TreePattern::descendant(inner));
        }
        let attr = self.parse_attrform()?;
        let mut children = Vec::new();
        if self.eat('[') {
            loop {
                children.push(self.parse_pattern()?);
                if self.eat(',') {
                    continue;
                }
                self.expect(']')?;
                break;
            }
        }
        Ok(TreePattern::Node { attr, children })
    }

    fn parse_attrform(&mut self) -> Result<AttrFormula, PatternParseError> {
        self.skip_ws();
        let label = if self.peek() == Some('_') {
            self.bump();
            LabelTest::Wildcard
        } else {
            let ident = self.parse_ident()?;
            LabelTest::Element(ElementType::new(ident))
        };
        let mut bindings = Vec::new();
        if self.eat('(') {
            loop {
                self.skip_ws();
                let attr = self.parse_ident()?;
                self.expect('=')?;
                let term = self.parse_term()?;
                bindings.push(AttrBinding {
                    attr: AttrName::new(attr),
                    term,
                });
                if self.eat(',') {
                    continue;
                }
                self.expect(')')?;
                break;
            }
        }
        Ok(AttrFormula { label, bindings })
    }

    fn parse_term(&mut self) -> Result<Term, PatternParseError> {
        self.skip_ws();
        match self.peek() {
            Some('$') => {
                self.bump();
                let ident = self.parse_ident()?;
                Ok(Term::Var(Var::new(ident)))
            }
            Some('"') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '"' {
                        let s = self.input[start..self.pos].to_string();
                        self.bump();
                        return Ok(Term::Const(s));
                    }
                    self.bump();
                }
                Err(self.error("unterminated string constant"))
            }
            _ => Err(self.error("expected a term: $variable or \"constant\"")),
        }
    }

    fn parse_ident(&mut self) -> Result<String, PatternParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '@' || c == '-' || c == '.' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.error("expected an identifier"))
        } else {
            Ok(self.input[start..self.pos].to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_3_4_patterns() {
        let src = parse_pattern("db[book(@title=$x)[author(@name=$y)]]").unwrap();
        assert_eq!(src.to_string(), "db[book(@title = $x)[author(@name = $y)]]");
        assert_eq!(src.free_vars().len(), 2);

        let tgt = parse_pattern("bib[writer(@name=$y)[work(@title=$x, @year=$z)]]").unwrap();
        assert_eq!(tgt.free_vars().len(), 3);
        assert!(tgt.is_fully_specified(&ElementType::new("bib")));
    }

    #[test]
    fn parses_descendant_and_wildcard() {
        let p = parse_pattern("//vr[q1[yes]]").unwrap();
        assert!(p.uses_descendant());
        assert!(!p.uses_wildcard());
        let q = parse_pattern("_(@a1=$x, @a2=$x)").unwrap();
        assert!(q.uses_wildcard());
        assert_eq!(q.free_vars().len(), 1);
        // the G1 great-grandchild pattern from Theorem 5.11
        let g = parse_pattern("G1[_[_[_(@l=$x)]]]").unwrap();
        assert!(g.uses_wildcard());
        assert!(!g.uses_descendant());
    }

    #[test]
    fn parses_constants() {
        let p = parse_pattern("work(@title=\"Computational Complexity\", @year=$y)").unwrap();
        match p {
            TreePattern::Node { attr, .. } => {
                assert_eq!(attr.bindings.len(), 2);
                assert_eq!(
                    attr.bindings[0].term,
                    Term::Const("Computational Complexity".to_string())
                );
            }
            _ => panic!("expected a node"),
        }
    }

    #[test]
    fn whitespace_is_flexible() {
        let a = parse_pattern("db[ book( @title = $x ) [ author ( @name = $y ) ] ]").unwrap();
        let b = parse_pattern("db[book(@title=$x)[author(@name=$y)]]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_children() {
        let p = parse_pattern("r[a, b(@x=$v), //c]").unwrap();
        match &p {
            TreePattern::Node { children, .. } => assert_eq!(children.len(), 3),
            _ => panic!("expected node"),
        }
        assert!(p.uses_descendant());
    }

    #[test]
    fn errors() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("a[").is_err());
        assert!(parse_pattern("a(@x=)").is_err());
        assert!(parse_pattern("a(@x=$y").is_err());
        assert!(parse_pattern("a]").is_err());
        assert!(parse_pattern("a(@x=\"unterminated)").is_err());
    }

    #[test]
    fn parses_queries_in_both_alphabets() {
        let ascii =
            parse_query("($x, $y) :- writer(@name=$x)[work(@title=$t)] & writer(@name=$y)[work(@title=$t)] | ($a, $a) :- _(@v=$a)")
                .unwrap();
        assert_eq!(ascii.branches().len(), 2);
        assert_eq!(ascii.arity(), 2);
        let unicode = parse_query(&ascii.to_string()).unwrap();
        assert_eq!(
            ascii, unicode,
            "Display output must re-parse to the same query"
        );

        let boolean = parse_query("() :- bib[writer(@name=\"Steiglitz\")]").unwrap();
        assert!(boolean.is_boolean());
        assert_eq!(parse_query(&boolean.to_string()).unwrap(), boolean);
    }

    #[test]
    fn query_parse_errors_are_structured() {
        use crate::query::QueryError;
        // Syntax errors.
        for bad in [
            "",
            "($x)",
            "($x) :-",
            "($x) writer(@name=$x)",
            "($x) :- writer(@name=$x) trailing",
            "($x,) :- writer(@name=$x)",
            "(x) :- writer(@name=$x)",
            "($x) :- writer(@name=$x) |",
        ] {
            assert!(
                matches!(parse_query(bad), Err(QueryParseError::Syntax(_))),
                "{bad:?}"
            );
        }
        // Structurally invalid queries.
        assert!(matches!(
            parse_query("($ghost) :- writer(@name=$x)"),
            Err(QueryParseError::Invalid(
                QueryError::UnboundHeadVariable { .. }
            ))
        ));
        assert!(matches!(
            parse_query("($x) :- writer(@name=$x) | () :- bib"),
            Err(QueryParseError::Invalid(QueryError::MismatchedArity { .. }))
        ));
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "db[book(@title = $x)[author(@name = $y)]]",
            "//vr[q1[yes], label[a2]]",
            "_(@a = $x, @b = \"k\")",
            "K[L(@p = $x, @n = $y)]",
        ] {
            let p = parse_pattern(src).unwrap();
            let printed = p.to_string();
            let p2 = parse_pattern(&printed).unwrap();
            assert_eq!(p, p2, "round-trip failed for {src}");
        }
    }
}
