//! A compact text syntax for tree-pattern formulae.
//!
//! ```text
//! pattern  ::= '//' pattern
//!            | attrform ( '[' pattern (',' pattern)* ']' )?
//! attrform ::= label ( '(' binding (',' binding)* ')' )?
//! label    ::= IDENT | '_'
//! binding  ::= ATTR '=' term
//! term     ::= '$' IDENT            (variable)
//!            | '"' characters '"'   (constant)
//! ```
//!
//! Examples (all from the paper):
//!
//! * `db[book(@title=$x)[author(@name=$y)]]`
//! * `bib[writer(@name=$y)[work(@title=$x, @year=$z)]]`
//! * `//vr[q1[yes]]`
//! * `_(@a1=$x, @a2=$x)`

use crate::pattern::{AttrBinding, AttrFormula, LabelTest, Term, TreePattern, Var};
use crate::query::{ConjunctiveTreeQuery, QueryError, UnionQuery};
use std::fmt;
use xdx_xmltree::lexer::{Cursor, LexError};
use xdx_xmltree::{AttrName, ElementType};

/// Hard cap on pattern nesting depth (`[`-nesting plus `//` chains). The
/// parser is recursive-descent, so without a cap a hostile input of a few
/// hundred kilobytes (`a[a[a[…`) would overflow the parsing thread's stack
/// rather than return an error. Far above any pattern the paper's
/// constructions produce, and far below stack-overflow territory.
pub const MAX_PATTERN_DEPTH: usize = 512;

/// Error raised by [`parse_pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PatternParseError {}

impl From<LexError> for PatternParseError {
    fn from(e: LexError) -> Self {
        PatternParseError {
            position: e.position,
            message: e.message,
        }
    }
}

/// Error raised by [`parse_query`]: either the text does not parse, or it
/// parses into a structurally invalid query (unbound head variable,
/// mismatched union arities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// A syntax error at some byte position.
    Syntax(PatternParseError),
    /// The parsed query violates a construction rule of
    /// [`crate::query::ConjunctiveTreeQuery`] / [`crate::query::UnionQuery`].
    Invalid(QueryError),
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryParseError::Syntax(e) => write!(f, "{e}"),
            QueryParseError::Invalid(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for QueryParseError {}

impl From<PatternParseError> for QueryParseError {
    fn from(e: PatternParseError) -> Self {
        QueryParseError::Syntax(e)
    }
}

impl From<QueryError> for QueryParseError {
    fn from(e: QueryError) -> Self {
        QueryParseError::Invalid(e)
    }
}

/// Parse a tree-pattern formula from its text syntax.
pub fn parse_pattern(input: &str) -> Result<TreePattern, PatternParseError> {
    let mut p = Parser {
        cur: Cursor::new(input),
    };
    let pat = p.parse_pattern(0)?;
    if !p.cur.at_end() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(pat)
}

/// Parse a (union of) conjunctive tree queries from the rule-like syntax the
/// `Display` impls of [`ConjunctiveTreeQuery`] and [`UnionQuery`] print:
///
/// ```text
/// query  ::= branch ( ('∪' | '|') branch )*
/// branch ::= '(' ( var (',' var)* )? ')' ':-' pattern ( ('∧' | '&') pattern )*
/// var    ::= '$' IDENT
/// ```
///
/// `()` is a Boolean head. The ASCII aliases `|` and `&` are accepted so
/// queries can be written without Unicode; the pretty-printed form
/// round-trips: `parse_query(&q.to_string())` reconstructs `q` whenever its
/// constants contain no `"` or `\` (the pattern syntax has no escapes).
///
/// ```
/// use xdx_patterns::parser::parse_query;
/// let q = parse_query("($w) :- writer(@name=$w)[work(@title=$t)] & work(@title=$t)").unwrap();
/// assert_eq!(q.arity(), 1);
/// let round = parse_query(&q.to_string()).unwrap();
/// assert_eq!(q, round);
/// ```
pub fn parse_query(input: &str) -> Result<UnionQuery, QueryParseError> {
    let mut p = Parser {
        cur: Cursor::new(input),
    };
    let mut branches = vec![p.parse_branch()?];
    while p.cur.eat('∪') || p.cur.eat('|') {
        branches.push(p.parse_branch()?);
    }
    if !p.cur.at_end() {
        return Err(p.error("unexpected trailing input").into());
    }
    Ok(UnionQuery::new(branches)?)
}

/// The identifier alphabet of this grammar (deliberately Unicode-friendly —
/// paper examples use labels like `vr` but nothing stops a setting from
/// using non-ASCII element names).
fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '@' || c == '-' || c == '.'
}

/// The grammar layer over the shared [`Cursor`] (see
/// [`xdx_xmltree::lexer`]); tokenization lives there, pattern structure
/// here.
struct Parser<'a> {
    cur: Cursor<'a>,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> PatternParseError {
        self.cur.error(message).into()
    }

    /// One union branch: `(head vars) :- pattern ∧ … ∧ pattern`.
    fn parse_branch(&mut self) -> Result<ConjunctiveTreeQuery, QueryParseError> {
        self.cur.expect('(').map_err(PatternParseError::from)?;
        let mut head: Vec<Var> = Vec::new();
        if !self.cur.eat(')') {
            loop {
                self.cur.expect('$').map_err(PatternParseError::from)?;
                head.push(Var::new(self.parse_ident()?));
                if self.cur.eat(',') {
                    continue;
                }
                self.cur.expect(')').map_err(PatternParseError::from)?;
                break;
            }
        }
        if !self.cur.eat_str(":-") {
            return Err(self.error("expected ':-' after the query head").into());
        }
        let mut patterns = vec![self.parse_pattern(0)?];
        while self.cur.eat('∧') || self.cur.eat('&') {
            patterns.push(self.parse_pattern(0)?);
        }
        Ok(ConjunctiveTreeQuery::new(head, patterns)?)
    }

    fn parse_pattern(&mut self, depth: usize) -> Result<TreePattern, PatternParseError> {
        if depth >= MAX_PATTERN_DEPTH {
            return Err(self.error(&format!(
                "pattern exceeds the nesting-depth cap of {MAX_PATTERN_DEPTH}"
            )));
        }
        self.cur.skip_ws();
        if self.cur.eat_str("//") {
            let inner = self.parse_pattern(depth + 1)?;
            return Ok(TreePattern::descendant(inner));
        }
        let attr = self.parse_attrform()?;
        let mut children = Vec::new();
        if self.cur.eat('[') {
            loop {
                children.push(self.parse_pattern(depth + 1)?);
                if self.cur.eat(',') {
                    continue;
                }
                self.cur.expect(']')?;
                break;
            }
        }
        Ok(TreePattern::Node { attr, children })
    }

    fn parse_attrform(&mut self) -> Result<AttrFormula, PatternParseError> {
        self.cur.skip_ws();
        let label = if self.cur.peek() == Some('_') {
            self.cur.bump();
            LabelTest::Wildcard
        } else {
            let ident = self.parse_ident()?;
            LabelTest::Element(ElementType::new(ident))
        };
        let mut bindings = Vec::new();
        if self.cur.eat('(') {
            loop {
                let attr = self.parse_ident()?;
                self.cur.expect('=')?;
                let term = self.parse_term()?;
                bindings.push(AttrBinding {
                    attr: AttrName::new(attr),
                    term,
                });
                if self.cur.eat(',') {
                    continue;
                }
                self.cur.expect(')')?;
                break;
            }
        }
        Ok(AttrFormula { label, bindings })
    }

    fn parse_term(&mut self) -> Result<Term, PatternParseError> {
        self.cur.skip_ws();
        match self.cur.peek() {
            Some('$') => {
                self.cur.bump();
                let ident = self.parse_ident()?;
                Ok(Term::Var(Var::new(ident)))
            }
            // Constants are raw up to the closing quote — no escapes, a
            // deliberate difference from the tree-text grammar.
            Some('"') => Ok(Term::Const(self.cur.quoted_raw()?.to_string())),
            _ => Err(self.error("expected a term: $variable or \"constant\"")),
        }
    }

    fn parse_ident(&mut self) -> Result<String, PatternParseError> {
        Ok(self.cur.ident(ident_char, "an identifier")?.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_3_4_patterns() {
        let src = parse_pattern("db[book(@title=$x)[author(@name=$y)]]").unwrap();
        assert_eq!(src.to_string(), "db[book(@title = $x)[author(@name = $y)]]");
        assert_eq!(src.free_vars().len(), 2);

        let tgt = parse_pattern("bib[writer(@name=$y)[work(@title=$x, @year=$z)]]").unwrap();
        assert_eq!(tgt.free_vars().len(), 3);
        assert!(tgt.is_fully_specified(&ElementType::new("bib")));
    }

    #[test]
    fn parses_descendant_and_wildcard() {
        let p = parse_pattern("//vr[q1[yes]]").unwrap();
        assert!(p.uses_descendant());
        assert!(!p.uses_wildcard());
        let q = parse_pattern("_(@a1=$x, @a2=$x)").unwrap();
        assert!(q.uses_wildcard());
        assert_eq!(q.free_vars().len(), 1);
        // the G1 great-grandchild pattern from Theorem 5.11
        let g = parse_pattern("G1[_[_[_(@l=$x)]]]").unwrap();
        assert!(g.uses_wildcard());
        assert!(!g.uses_descendant());
    }

    #[test]
    fn parses_constants() {
        let p = parse_pattern("work(@title=\"Computational Complexity\", @year=$y)").unwrap();
        match p {
            TreePattern::Node { attr, .. } => {
                assert_eq!(attr.bindings.len(), 2);
                assert_eq!(
                    attr.bindings[0].term,
                    Term::Const("Computational Complexity".to_string())
                );
            }
            _ => panic!("expected a node"),
        }
    }

    #[test]
    fn whitespace_is_flexible() {
        let a = parse_pattern("db[ book( @title = $x ) [ author ( @name = $y ) ] ]").unwrap();
        let b = parse_pattern("db[book(@title=$x)[author(@name=$y)]]").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_children() {
        let p = parse_pattern("r[a, b(@x=$v), //c]").unwrap();
        match &p {
            TreePattern::Node { children, .. } => assert_eq!(children.len(), 3),
            _ => panic!("expected node"),
        }
        assert!(p.uses_descendant());
    }

    #[test]
    fn errors() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("a[").is_err());
        assert!(parse_pattern("a(@x=)").is_err());
        assert!(parse_pattern("a(@x=$y").is_err());
        assert!(parse_pattern("a]").is_err());
        assert!(parse_pattern("a(@x=\"unterminated)").is_err());
    }

    #[test]
    fn parses_queries_in_both_alphabets() {
        let ascii =
            parse_query("($x, $y) :- writer(@name=$x)[work(@title=$t)] & writer(@name=$y)[work(@title=$t)] | ($a, $a) :- _(@v=$a)")
                .unwrap();
        assert_eq!(ascii.branches().len(), 2);
        assert_eq!(ascii.arity(), 2);
        let unicode = parse_query(&ascii.to_string()).unwrap();
        assert_eq!(
            ascii, unicode,
            "Display output must re-parse to the same query"
        );

        let boolean = parse_query("() :- bib[writer(@name=\"Steiglitz\")]").unwrap();
        assert!(boolean.is_boolean());
        assert_eq!(parse_query(&boolean.to_string()).unwrap(), boolean);
    }

    #[test]
    fn query_parse_errors_are_structured() {
        use crate::query::QueryError;
        // Syntax errors.
        for bad in [
            "",
            "($x)",
            "($x) :-",
            "($x) writer(@name=$x)",
            "($x) :- writer(@name=$x) trailing",
            "($x,) :- writer(@name=$x)",
            "(x) :- writer(@name=$x)",
            "($x) :- writer(@name=$x) |",
        ] {
            assert!(
                matches!(parse_query(bad), Err(QueryParseError::Syntax(_))),
                "{bad:?}"
            );
        }
        // Structurally invalid queries.
        assert!(matches!(
            parse_query("($ghost) :- writer(@name=$x)"),
            Err(QueryParseError::Invalid(
                QueryError::UnboundHeadVariable { .. }
            ))
        ));
        assert!(matches!(
            parse_query("($x) :- writer(@name=$x) | () :- bib"),
            Err(QueryParseError::Invalid(QueryError::MismatchedArity { .. }))
        ));
    }

    #[test]
    fn depth_bombs_error_instead_of_overflowing() {
        // Deeper than MAX_PATTERN_DEPTH: both the `[`-nesting and the `//`
        // chain must come back as structured errors, not stack overflows.
        let bomb = "a[".repeat(100_000) + "b" + &"]".repeat(100_000);
        let err = parse_pattern(&bomb).unwrap_err();
        assert!(err.message.contains("nesting-depth"), "{err}");
        let slashes = "//".repeat(100_000) + "a";
        let err = parse_pattern(&slashes).unwrap_err();
        assert!(err.message.contains("nesting-depth"), "{err}");
        // At the cap boundary both sides still work.
        let deep = "a[".repeat(MAX_PATTERN_DEPTH - 1) + "b" + &"]".repeat(MAX_PATTERN_DEPTH - 1);
        assert!(parse_pattern(&deep).is_ok());
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "db[book(@title = $x)[author(@name = $y)]]",
            "//vr[q1[yes], label[a2]]",
            "_(@a = $x, @b = \"k\")",
            "K[L(@p = $x, @n = $y)]",
        ] {
            let p = parse_pattern(src).unwrap();
            let printed = p.to_string();
            let p2 = parse_pattern(&printed).unwrap();
            assert_eq!(p, p2, "round-trip failed for {src}");
        }
    }
}
