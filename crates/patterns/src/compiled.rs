//! Interned-symbol pattern evaluation — the compiled fast path.
//!
//! [`crate::eval`] compares element-type labels by string content at every
//! candidate node and deduplicates assignments by linear scans. For the
//! compile-once/evaluate-many pipeline (`CompiledSetting` in `xdx-core`),
//! patterns are instead resolved **once** against a [`CompiledDtd`]'s symbol
//! interner: label tests become dense `u32` [`Sym`] comparisons (a pattern
//! label the DTD does not declare falls back to a direct label comparison,
//! preserving the reference semantics on trees that do not conform to the
//! DTD), the tree's labels are interned once per evaluation, and assignment
//! sets are deduplicated through a `BTreeSet`.
//!
//! The reference evaluator stays the source of truth;
//! [`all_matches_compiled`] is differential-tested against
//! [`crate::eval::all_matches`].

use crate::eval::{merge_assignments, Assignment};
use crate::pattern::{AttrBinding, LabelTest, Term, TreePattern};
use std::collections::BTreeSet;
use xdx_xmltree::{CompiledDtd, ElementType, NodeId, Sym, XmlTree};

/// A label test resolved against an interner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledLabelTest {
    /// Wildcard `_`: accepts every node.
    Any,
    /// A concrete element type, as its dense symbol id.
    Is(Sym),
    /// A concrete element type the DTD does not declare. On a conforming
    /// tree this never matches, but patterns are also evaluated against
    /// unvalidated trees (the paper never requires `T ⊨ D` for pattern
    /// semantics), so it falls back to comparing the node label directly —
    /// exactly what the reference evaluator does.
    Uninterned(ElementType),
}

/// A [`TreePattern`] compiled against a [`CompiledDtd`]'s symbol table.
#[derive(Debug, Clone)]
pub enum CompiledPattern {
    /// Attribute formula with child sub-patterns.
    Node {
        /// The resolved label test.
        label: CompiledLabelTest,
        /// The attribute bindings of the formula (shared with the source
        /// pattern).
        bindings: Vec<AttrBinding>,
        /// Child sub-patterns.
        children: Vec<CompiledPattern>,
    },
    /// `//ϕ` — witnessed by a proper descendant.
    Descendant(Box<CompiledPattern>),
}

impl CompiledPattern {
    /// Resolve `pattern`'s label tests against `dtd`'s interner.
    pub fn new(pattern: &TreePattern, dtd: &CompiledDtd) -> CompiledPattern {
        match pattern {
            TreePattern::Node { attr, children } => CompiledPattern::Node {
                label: match &attr.label {
                    LabelTest::Wildcard => CompiledLabelTest::Any,
                    LabelTest::Element(e) => match dtd.sym(e) {
                        Some(s) => CompiledLabelTest::Is(s),
                        None => CompiledLabelTest::Uninterned(e.clone()),
                    },
                },
                bindings: attr.bindings.clone(),
                children: children
                    .iter()
                    .map(|c| CompiledPattern::new(c, dtd))
                    .collect(),
            },
            TreePattern::Descendant(inner) => {
                CompiledPattern::Descendant(Box::new(CompiledPattern::new(inner, dtd)))
            }
        }
    }

    /// Does any label test fall outside the DTD's symbol table
    /// ([`CompiledLabelTest::Uninterned`])? Such a pattern can only be
    /// witnessed by a tree that does not conform to the DTD.
    pub fn mentions_undeclared_label(&self) -> bool {
        match self {
            CompiledPattern::Node {
                label, children, ..
            } => {
                matches!(label, CompiledLabelTest::Uninterned(_))
                    || children.iter().any(|c| c.mentions_undeclared_label())
            }
            CompiledPattern::Descendant(inner) => inner.mentions_undeclared_label(),
        }
    }
}

/// Pre-interned labels of a tree, indexed by `NodeId::index()`.
pub struct InternedLabels {
    labels: Vec<Option<Sym>>,
}

impl InternedLabels {
    /// Intern every label of `tree` against `dtd` once.
    pub fn new(tree: &XmlTree, dtd: &CompiledDtd) -> Self {
        InternedLabels {
            labels: dtd.intern_tree(tree),
        }
    }

    #[inline]
    fn get(&self, node: NodeId) -> Option<Sym> {
        self.labels[node.index()]
    }

    /// The interned label per arena slot (used by
    /// [`crate::plan::TreeIndex`] to build candidate buckets without
    /// re-interning).
    pub(crate) fn slots(&self) -> &[Option<Sym>] {
        &self.labels
    }
}

/// All assignments under which some node of `tree` witnesses `pattern`
/// (compiled analogue of [`crate::eval::all_matches`]).
///
/// Runs on the join-ordered planned evaluator ([`crate::plan`]), planning
/// `pattern` per call; the compiled layer in `xdx-core` holds
/// [`crate::plan::PatternPlan`]s and per-tree [`crate::plan::TreeIndex`]es
/// directly so the plan is built once per pattern and the index once per
/// tree. The per-node recursion ([`matches_at_compiled`]) is retained for
/// callers that need witness sets at a specific node.
pub fn all_matches_compiled(
    tree: &XmlTree,
    pattern: &CompiledPattern,
    labels: &InternedLabels,
) -> Vec<Assignment> {
    let plan = crate::plan::PatternPlan::from_compiled(pattern);
    let index = crate::plan::TreeIndex::from_interned(tree, labels);
    plan.all_matches(tree, &index)
}

/// As [`all_matches_compiled`], via the enumerate-then-merge recursion with
/// `BTreeSet` dedup — the pre-plan implementation, kept for differential
/// tests against the planned path.
pub fn all_matches_compiled_reference(
    tree: &XmlTree,
    pattern: &CompiledPattern,
    labels: &InternedLabels,
) -> Vec<Assignment> {
    let mut out: BTreeSet<Assignment> = BTreeSet::new();
    for node in tree.nodes() {
        for m in matches_at_compiled(tree, node, pattern, labels) {
            out.insert(m);
        }
    }
    out.into_iter().collect()
}

/// All assignments under which `node` witnesses `pattern`.
pub fn matches_at_compiled(
    tree: &XmlTree,
    node: NodeId,
    pattern: &CompiledPattern,
    labels: &InternedLabels,
) -> Vec<Assignment> {
    match pattern {
        CompiledPattern::Node {
            label,
            bindings,
            children,
        } => {
            let label_ok = match label {
                CompiledLabelTest::Any => true,
                CompiledLabelTest::Is(s) => labels.get(node) == Some(*s),
                // Undeclared labels can only live on uninterned nodes.
                CompiledLabelTest::Uninterned(e) => {
                    labels.get(node).is_none() && tree.label(node) == e
                }
            };
            if !label_ok {
                return Vec::new();
            }
            let Some(base) = match_bindings(tree, node, bindings) else {
                return Vec::new();
            };
            let mut partials = vec![base];
            for child_pattern in children {
                let mut next: BTreeSet<Assignment> = BTreeSet::new();
                for partial in &partials {
                    for &child in tree.children(node) {
                        for m in matches_at_compiled(tree, child, child_pattern, labels) {
                            if let Some(merged) = merge_assignments(partial, &m) {
                                next.insert(merged);
                            }
                        }
                    }
                }
                partials = next.into_iter().collect();
                if partials.is_empty() {
                    return Vec::new();
                }
            }
            partials
        }
        CompiledPattern::Descendant(inner) => {
            let mut out: BTreeSet<Assignment> = BTreeSet::new();
            for d in tree.descendants(node) {
                for m in matches_at_compiled(tree, d, inner, labels) {
                    out.insert(m);
                }
            }
            out.into_iter().collect()
        }
    }
}

// Compile-time audit: compiled patterns and interned label tables are shared
// across threads by `xdx-core`'s `CompiledSetting`/`BatchEngine`.
#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<CompiledPattern>();
    check::<CompiledLabelTest>();
    check::<InternedLabels>();
    check::<TreePattern>();
}

pub(crate) fn match_bindings(
    tree: &XmlTree,
    node: NodeId,
    bindings: &[AttrBinding],
) -> Option<Assignment> {
    let mut assignment = Assignment::new();
    for binding in bindings {
        let value = tree.attr(node, &binding.attr)?;
        match &binding.term {
            Term::Const(expected) => {
                if value.as_const() != Some(expected.as_str()) {
                    return None;
                }
            }
            Term::Var(var) => match assignment.get(var) {
                Some(existing) if existing != value => return None,
                _ => {
                    assignment.insert(var.clone(), value.clone());
                }
            },
        }
    }
    Some(assignment)
}

/// Does `T ⊨ ϕ(σ)` hold, given the pre-computed match relation `ϕ(T)`?
///
/// Compiled analogue of [`crate::eval::holds`], but taking the match set so
/// callers evaluating many assignments against one target tree (e.g.
/// `is_solution`) compute `ϕ(T)` once instead of per assignment.
pub fn holds_in_matches(matches: &[Assignment], assignment: &Assignment) -> bool {
    matches.iter().any(|m| {
        m.iter().all(|(var, value)| match assignment.get(var) {
            Some(expected) => expected == value,
            None => true,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::all_matches;
    use crate::parser::parse_pattern;
    use xdx_xmltree::{Dtd, TreeBuilder, Value};

    fn dtd() -> Dtd {
        Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .rule("author", "eps")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap()
    }

    fn tree() -> XmlTree {
        TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "CO")
                    .child("author", |a| a.attr("@name", "P").attr("@aff", "U"))
                    .child("author", |a| a.attr("@name", "S").attr("@aff", "Pr"))
            })
            .child("book", |b| {
                b.attr("@title", "CC")
                    .child("author", |a| a.attr("@name", "P").attr("@aff", "U"))
            })
            .build()
    }

    fn assert_same_matches(pattern_src: &str) {
        let d = dtd();
        let t = tree();
        let p = parse_pattern(pattern_src).unwrap();
        let compiled = CompiledPattern::new(&p, d.compiled());
        let labels = InternedLabels::new(&t, d.compiled());
        let mut reference = all_matches(&t, &p);
        let mut fast = all_matches_compiled(&t, &compiled, &labels);
        reference.sort();
        fast.sort();
        assert_eq!(reference, fast, "pattern {pattern_src}");
    }

    #[test]
    fn compiled_matches_agree_with_reference() {
        for src in [
            "book(@title=$x)[author(@name=$y)]",
            "author(@name=$y)",
            "//author",
            "db[//db]",
            "db[//author(@aff=$a)]",
            "_(@name=$n)",
            "db[_[_(@aff=$a)]]",
            "db[book(@title=$x), book(@title=$y)]",
            "book(@title=\"CC\")[author(@name=$y)]",
            "book(@year=$y)",
        ] {
            assert_same_matches(src);
        }
    }

    #[test]
    fn unknown_labels_never_match_conforming_trees() {
        let d = dtd();
        let t = tree();
        let p = parse_pattern("journal(@title=$x)").unwrap();
        let compiled = CompiledPattern::new(&p, d.compiled());
        assert!(compiled.mentions_undeclared_label());
        let labels = InternedLabels::new(&t, d.compiled());
        assert!(all_matches_compiled(&t, &compiled, &labels).is_empty());
        assert!(all_matches(&t, &p).is_empty());
    }

    #[test]
    fn unknown_labels_still_match_non_conforming_trees() {
        // Pattern semantics never require T ⊨ D: a pattern label the DTD
        // does not declare must still match a node carrying that label,
        // exactly as the reference evaluator does.
        let d = dtd();
        let mut t = XmlTree::new("db");
        let j = t.add_child(t.root(), "journal");
        t.set_attr(j, "@title", "JACM");
        let p = parse_pattern("journal(@title=$x)").unwrap();
        let compiled = CompiledPattern::new(&p, d.compiled());
        let labels = InternedLabels::new(&t, d.compiled());
        let mut fast = all_matches_compiled(&t, &compiled, &labels);
        let mut reference = all_matches(&t, &p);
        fast.sort();
        reference.sort();
        assert_eq!(fast, reference);
        assert_eq!(fast.len(), 1);
    }

    #[test]
    fn holds_in_matches_agrees_with_eval_holds() {
        use crate::eval::holds;
        use crate::pattern::Var;
        let _d = dtd();
        let t = tree();
        let p = parse_pattern("book(@title=$x)[author(@name=$y)]").unwrap();
        let matches = all_matches(&t, &p);
        let mut sigma = Assignment::new();
        sigma.insert(Var::new("x"), Value::constant("CC"));
        sigma.insert(Var::new("y"), Value::constant("P"));
        assert_eq!(holds(&t, &p, &sigma), holds_in_matches(&matches, &sigma));
        sigma.insert(Var::new("y"), Value::constant("S"));
        assert_eq!(holds(&t, &p, &sigma), holds_in_matches(&matches, &sigma));
    }
}
