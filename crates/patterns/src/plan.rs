//! Join-ordered pattern evaluation — the planned fast path.
//!
//! The recursive evaluators ([`crate::eval::all_matches_reference`] and
//! [`crate::compiled::matches_at_compiled`]) are *enumerate-then-merge*: at
//! every candidate node they re-enumerate every child for every sub-pattern
//! and deduplicate assignment sets through `BTreeSet`s of whole `BTreeMap`s.
//! This module replaces that with a twig-join-style worklist matcher:
//!
//! * a [`TreeIndex`] is built in **one pass** over the tree: per-symbol
//!   candidate buckets for interned labels, string-keyed buckets for labels
//!   the DTD does not declare, and the preorder node list for wildcards —
//!   so a pattern node only ever visits the tree nodes its label test can
//!   accept, instead of scanning the whole tree;
//! * a [`PatternPlan`] flattens the pattern into **bottom-up evaluation
//!   order** (children strictly before parents), so every sub-pattern's
//!   match sites are known before its parent joins them. Parent joins go
//!   through a *group-by-tree-parent* edge map, making the per-candidate
//!   cost proportional to the matches actually below it, not to its child
//!   count, and child/descendant edges are joined in ascending order of
//!   their **measured** cardinality (the bottom-up order makes exact
//!   selectivities free — no estimation error);
//! * partial assignments are interned in an [`AssignStore`]: every distinct
//!   assignment gets a dense `u32` id from an `FxHash`-style map, so
//!   deduplication during merges is a hash-set of `u32`s and repeated merges
//!   of the same pair hit a memo instead of re-walking two `BTreeMap`s.
//!
//! [`QueryPlan`] lifts the same idea to conjunctive tree queries: the
//! per-pattern relations of a branch share one assignment store and are
//! joined smallest-first.
//!
//! The recursive evaluator remains the oracle:
//! [`crate::eval::all_matches_reference`] is kept unchanged and the planned
//! evaluator is differential-tested against it (unit tests below plus the
//! randomized harness in `tests/pattern_differential.rs`).

use crate::compiled::{match_bindings, CompiledLabelTest, CompiledPattern};
use crate::eval::{merge_assignments, Assignment};
use crate::pattern::{LabelTest, TreePattern, Var};
use crate::query::UnionQuery;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use xdx_xmltree::{AttrName, CompiledDtd, ElementType, NodeId, Sym, Value, XmlTree};

// ---------------------------------------------------------------------------
// FxHash-style hashing
// ---------------------------------------------------------------------------

/// The multiplier of the rustc/Firefox "Fx" hash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A minimal FxHash-style hasher: one rotate + xor + multiply per word.
/// Deterministic (no random state), so iteration-free uses of the maps below
/// produce identical results across runs and threads.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` keyed by the FxHash-style hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed by the FxHash-style hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

// ---------------------------------------------------------------------------
// Assignment interning
// ---------------------------------------------------------------------------

/// Dense id of an interned [`Assignment`]. Id 0 is always the empty
/// assignment.
type AssignId = u32;

/// Hashed-assignment dedup: every distinct assignment seen during one
/// evaluation gets a dense id, so set operations on assignment sets become
/// set operations on `u32`s, and merging the same pair twice hits a memo.
///
/// The id table is keyed by the assignment's hash with explicit collision
/// buckets (ids into the arena), so interning moves the assignment into the
/// arena without ever cloning it.
#[derive(Debug, Default)]
struct AssignStore {
    assignments: Vec<Assignment>,
    /// Assignment hash → ids of arena entries with that hash.
    ids: FxHashMap<u64, Vec<AssignId>>,
    /// Memo of pairwise merges, keyed by the (order-normalised) id pair.
    merges: FxHashMap<(AssignId, AssignId), Option<AssignId>>,
}

fn assignment_hash(assignment: &Assignment) -> u64 {
    use std::hash::Hash;
    let mut hasher = FxHasher::default();
    assignment.hash(&mut hasher);
    hasher.finish()
}

impl AssignStore {
    fn new() -> Self {
        let mut store = AssignStore::default();
        store.intern(Assignment::new());
        store
    }

    /// Interned assignments currently in the arena.
    fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Forget every interned assignment but keep the allocated hash tables
    /// and the arena `Vec`'s capacity, so the next evaluation starts with
    /// warm heap blocks (the point of [`EvalScratch`]).
    fn reset(&mut self) {
        self.assignments.clear();
        self.ids.clear();
        self.merges.clear();
        self.intern(Assignment::new());
    }

    fn intern(&mut self, assignment: Assignment) -> AssignId {
        let bucket = self.ids.entry(assignment_hash(&assignment)).or_default();
        for &id in bucket.iter() {
            if self.assignments[id as usize] == assignment {
                return id;
            }
        }
        let id = self.assignments.len() as AssignId;
        self.assignments.push(assignment);
        bucket.push(id);
        id
    }

    #[inline]
    fn get(&self, id: AssignId) -> &Assignment {
        &self.assignments[id as usize]
    }

    /// Merge two interned assignments; `None` if they disagree on a shared
    /// variable.
    fn merge(&mut self, a: AssignId, b: AssignId) -> Option<AssignId> {
        if a == b || b == 0 {
            return Some(a);
        }
        if a == 0 {
            return Some(b);
        }
        let key = (a.min(b), a.max(b));
        if let Some(&memoised) = self.merges.get(&key) {
            return memoised;
        }
        let merged = merge_assignments(self.get(key.0), self.get(key.1)).map(|m| self.intern(m));
        self.merges.insert(key, merged);
        merged
    }
}

// ---------------------------------------------------------------------------
// Tree index
// ---------------------------------------------------------------------------

/// A one-pass label index of a tree: per-node candidate sets for every kind
/// of label test, plus the interned label of every node.
///
/// Built once per tree (against the same [`CompiledDtd`] the plans were
/// built against, or DTD-less for DTD-less plans) and shared by every plan
/// evaluated over that tree — the compiled layer builds one per source /
/// target document and evaluates all STD patterns and query patterns
/// against it.
#[derive(Debug)]
pub struct TreeIndex {
    /// Interned label per arena slot (`None` for labels the DTD does not
    /// declare, and for every node in DTD-less mode).
    labels: Vec<Option<Sym>>,
    /// Candidate buckets for interned labels, indexed by `Sym::index()`,
    /// nodes in preorder.
    by_sym: Vec<Vec<NodeId>>,
    /// Candidate buckets for uninterned labels, keyed by the label itself.
    by_label: FxHashMap<ElementType, Vec<NodeId>>,
    /// Candidate buckets per attribute name (`@a` → nodes carrying `@a`, in
    /// preorder). A match of any attribute formula must carry every bound
    /// attribute, so for binding-guarded *wildcard* tests the smallest
    /// binding's bucket is a complete candidate set — no preorder scan.
    /// Built lazily on the first such lookup: most plans contain no
    /// binding-guarded wildcard, and those pay nothing for the map.
    by_attr: std::sync::OnceLock<FxHashMap<AttrName, Vec<NodeId>>>,
    /// Every node, in preorder (bare-wildcard candidates).
    nodes: Vec<NodeId>,
}

impl TreeIndex {
    /// Index `tree` against `dtd`'s symbol table.
    pub fn new(tree: &XmlTree, dtd: &CompiledDtd) -> Self {
        Self::build(tree, |_, label| dtd.sym(label))
    }

    /// Index `tree` with no DTD: every label test resolves by string
    /// comparison (the semantics of the reference evaluator).
    pub fn without_dtd(tree: &XmlTree) -> Self {
        Self::build(tree, |_, _| None)
    }

    /// Index `tree` from already-interned labels (one pass, no re-interning;
    /// used by [`crate::compiled::all_matches_compiled`]).
    pub fn from_interned(tree: &XmlTree, labels: &crate::compiled::InternedLabels) -> Self {
        let slots = labels.slots();
        Self::build(tree, |node, _| slots[node.index()])
    }

    /// An index over nothing; pair with [`TreeIndex::rebuild`] (the shape a
    /// reusable scratch slot starts in).
    pub fn empty() -> Self {
        TreeIndex {
            labels: Vec::new(),
            by_sym: Vec::new(),
            by_label: FxHashMap::default(),
            by_attr: std::sync::OnceLock::new(),
            nodes: Vec::new(),
        }
    }

    /// Re-index a (new) tree **in place**, keeping the heap blocks of the
    /// previous document: the preorder list, the per-slot label table and
    /// every per-symbol candidate bucket are cleared and refilled without
    /// reallocating. This is the per-document amortisation hook of the batch
    /// engine and the serving dispatcher — one `TreeIndex` per worker lives
    /// across all documents the worker processes.
    pub fn rebuild(&mut self, tree: &XmlTree, dtd: &CompiledDtd) {
        self.fill(tree, |_, label| dtd.sym(label));
    }

    /// As [`TreeIndex::rebuild`], DTD-less (pairs with plans built by
    /// [`PatternPlan::without_dtd`] / [`QueryPlan::without_dtd`]).
    pub fn rebuild_without_dtd(&mut self, tree: &XmlTree) {
        self.fill(tree, |_, _| None);
    }

    fn build(tree: &XmlTree, sym_of: impl Fn(NodeId, &ElementType) -> Option<Sym>) -> Self {
        let mut index = Self::empty();
        index.fill(tree, sym_of);
        index
    }

    fn fill(&mut self, tree: &XmlTree, sym_of: impl Fn(NodeId, &ElementType) -> Option<Sym>) {
        self.nodes.clear();
        self.nodes.extend(tree.preorder());
        self.labels.clear();
        self.labels.resize(tree.arena_len(), None);
        for bucket in &mut self.by_sym {
            bucket.clear();
        }
        // `by_label` values are dropped (keys change between documents);
        // uninterned labels are the rare case, so nothing worth keeping.
        self.by_label.clear();
        // The lazily-built attribute index belongs to the previous tree.
        self.by_attr = std::sync::OnceLock::new();
        for i in 0..self.nodes.len() {
            let node = self.nodes[i];
            let label = tree.label(node);
            match sym_of(node, label) {
                Some(sym) => {
                    self.labels[node.index()] = Some(sym);
                    if self.by_sym.len() <= sym.index() {
                        self.by_sym.resize_with(sym.index() + 1, Vec::new);
                    }
                    self.by_sym[sym.index()].push(node);
                }
                None => self.by_label.entry(label.clone()).or_default().push(node),
            }
        }
    }

    /// The `@a → nodes` buckets, built on first use from the preorder list
    /// (`tree` must be the tree this index was built over, like every other
    /// lookup on the index).
    fn attr_buckets(&self, tree: &XmlTree) -> &FxHashMap<AttrName, Vec<NodeId>> {
        self.by_attr.get_or_init(|| {
            let mut map: FxHashMap<AttrName, Vec<NodeId>> = FxHashMap::default();
            for &node in &self.nodes {
                for attr in tree.attrs(node).keys() {
                    map.entry(attr.clone()).or_default().push(node);
                }
            }
            map
        })
    }

    /// The interned label of `node` (`None` when the DTD does not declare
    /// it, or in DTD-less mode).
    #[inline]
    pub fn sym(&self, node: NodeId) -> Option<Sym> {
        self.labels[node.index()]
    }

    /// The candidate nodes of an attribute formula, in preorder. Label
    /// tests use their label bucket; a *wildcard* test with bindings uses
    /// the smallest bucket among the bound attribute names (every match
    /// must carry all of them), so binding-guarded wildcards are selective
    /// too; only a bare wildcard scans the full preorder list.
    fn candidates(
        &self,
        tree: &XmlTree,
        label: &CompiledLabelTest,
        bindings: &[crate::pattern::AttrBinding],
    ) -> &[NodeId] {
        match label {
            CompiledLabelTest::Any => {
                let mut best: Option<&[NodeId]> = None;
                for binding in bindings {
                    let bucket = self
                        .attr_buckets(tree)
                        .get(&binding.attr)
                        .map(Vec::as_slice)
                        .unwrap_or(&[]);
                    if best.is_none_or(|cur| bucket.len() < cur.len()) {
                        best = Some(bucket);
                    }
                }
                best.unwrap_or(&self.nodes)
            }
            CompiledLabelTest::Is(sym) => self
                .by_sym
                .get(sym.index())
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            CompiledLabelTest::Uninterned(label) => {
                self.by_label.get(label).map(Vec::as_slice).unwrap_or(&[])
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reusable evaluation scratch
// ---------------------------------------------------------------------------

/// Reusable per-evaluation state: the assignment store (arena + id tables +
/// merge memo) and the dedup set. One `EvalScratch` held across documents
/// keeps those heap blocks warm — the `*_with` entry points below reset it
/// (cheap, capacity-preserving) instead of reallocating per document.
///
/// Deliberately **not** `Sync`: a scratch belongs to one worker. The batch
/// engine and the serving dispatcher hold one per worker thread.
#[derive(Debug, Default)]
pub struct EvalScratch {
    store: AssignStore,
    seen: FxHashSet<AssignId>,
    /// Largest assignment-store population any evaluation on this scratch
    /// ever reached (captured at reset; the live store counts too).
    highwater: usize,
}

impl EvalScratch {
    /// A fresh scratch (equivalent to what the non-`_with` entry points
    /// build internally per call).
    pub fn new() -> Self {
        EvalScratch {
            store: AssignStore::new(),
            seen: FxHashSet::default(),
            highwater: 0,
        }
    }

    fn reset(&mut self) {
        self.highwater = self.highwater.max(self.store.len());
        self.store.reset();
        self.seen.clear();
    }

    /// Largest number of interned assignments any evaluation on this
    /// scratch ever held at once — the memory high-watermark of the join
    /// machinery, exported by the server as `engine.assign_highwater`.
    pub fn assign_highwater(&self) -> usize {
        self.highwater.max(self.store.len())
    }
}

// ---------------------------------------------------------------------------
// Pattern plans
// ---------------------------------------------------------------------------

/// One flattened pattern node. `children`/`inner` are indices into the
/// plan's node vector, which is in postorder — every index is smaller than
/// its parent's, so evaluating slots `0..len` in order is bottom-up.
#[derive(Debug, Clone)]
enum PlanNode {
    /// An attribute formula with child sub-patterns.
    Node {
        label: CompiledLabelTest,
        bindings: Vec<crate::pattern::AttrBinding>,
        children: Vec<usize>,
    },
    /// `//ϕ` — witnessed by a proper descendant.
    Descendant { inner: usize },
}

/// A [`TreePattern`] pre-planned for join-ordered evaluation (see the module
/// docs). Build once per `(pattern, DTD)` — or DTD-less — and evaluate
/// against any number of trees through per-tree [`TreeIndex`]es.
#[derive(Debug, Clone)]
pub struct PatternPlan {
    /// Plan nodes in postorder; the root is the last slot.
    nodes: Vec<PlanNode>,
}

impl PatternPlan {
    /// Plan `pattern` against `dtd`'s symbol table (labels the DTD does not
    /// declare keep the string-comparison fallback, exactly like
    /// [`CompiledPattern::new`]).
    pub fn new(pattern: &TreePattern, dtd: &CompiledDtd) -> Self {
        PatternPlan::from_compiled(&CompiledPattern::new(pattern, dtd))
    }

    /// Plan `pattern` with no DTD: every concrete label test compares label
    /// strings (pair with [`TreeIndex::without_dtd`]). Resolves every
    /// element label to the string-fallback test and reuses the one
    /// flattening in [`Self::from_compiled`].
    pub fn without_dtd(pattern: &TreePattern) -> Self {
        fn resolve(pattern: &TreePattern) -> CompiledPattern {
            match pattern {
                TreePattern::Node { attr, children } => CompiledPattern::Node {
                    label: match &attr.label {
                        LabelTest::Wildcard => CompiledLabelTest::Any,
                        LabelTest::Element(e) => CompiledLabelTest::Uninterned(e.clone()),
                    },
                    bindings: attr.bindings.clone(),
                    children: children.iter().map(resolve).collect(),
                },
                TreePattern::Descendant(inner) => {
                    CompiledPattern::Descendant(Box::new(resolve(inner)))
                }
            }
        }
        PatternPlan::from_compiled(&resolve(pattern))
    }

    /// Plan an already label-resolved [`CompiledPattern`].
    pub fn from_compiled(pattern: &CompiledPattern) -> Self {
        let mut nodes = Vec::new();
        fn flatten(pattern: &CompiledPattern, nodes: &mut Vec<PlanNode>) -> usize {
            match pattern {
                CompiledPattern::Node {
                    label,
                    bindings,
                    children,
                } => {
                    let children = children.iter().map(|c| flatten(c, nodes)).collect();
                    nodes.push(PlanNode::Node {
                        label: label.clone(),
                        bindings: bindings.clone(),
                        children,
                    });
                }
                CompiledPattern::Descendant(inner) => {
                    let inner = flatten(inner, nodes);
                    nodes.push(PlanNode::Descendant { inner });
                }
            }
            nodes.len() - 1
        }
        flatten(pattern, &mut nodes);
        PatternPlan { nodes }
    }

    /// All assignments under which some node of `tree` witnesses the
    /// pattern — the planned analogue of
    /// [`crate::eval::all_matches_reference`]. `index` must have been built
    /// over `tree` against the same DTD (or DTD-less) as this plan.
    pub fn all_matches(&self, tree: &XmlTree, index: &TreeIndex) -> Vec<Assignment> {
        let mut store = AssignStore::new();
        let ids = self.matches_ids(tree, index, &mut store);
        ids.into_iter().map(|id| store.get(id).clone()).collect()
    }

    /// Visit every distinct match **restricted to the variables in `keep`**.
    /// This is the shape the exchange pipeline consumes (matches restricted
    /// to the STD's shared variables, deduplicated): restriction and dedup
    /// happen on interned ids inside the store, so full matches are never
    /// cloned out and duplicates cost one hash probe. `f`'s first error
    /// aborts the walk.
    pub fn try_for_each_restricted_match<E>(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        keep: &BTreeSet<Var>,
        f: impl FnMut(&Assignment) -> Result<(), E>,
    ) -> Result<(), E> {
        self.try_for_each_restricted_match_with(tree, index, keep, &mut EvalScratch::new(), f)
    }

    /// As [`Self::try_for_each_restricted_match`], reusing a caller-held
    /// [`EvalScratch`] (reset on entry) so repeated per-document evaluations
    /// keep their assignment-store heap blocks.
    pub fn try_for_each_restricted_match_with<E>(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        keep: &BTreeSet<Var>,
        scratch: &mut EvalScratch,
        mut f: impl FnMut(&Assignment) -> Result<(), E>,
    ) -> Result<(), E> {
        scratch.reset();
        let EvalScratch { store, seen, .. } = scratch;
        let ids = self.matches_ids(tree, index, store);
        for id in ids {
            let full = store.get(id);
            let rid = if full.keys().all(|v| keep.contains(v)) {
                // Already within the kept variables: restriction is the
                // identity, no rebuild needed.
                id
            } else {
                let restricted: Assignment = full
                    .iter()
                    .filter(|(v, _)| keep.contains(*v))
                    .map(|(v, value)| (v.clone(), value.clone()))
                    .collect();
                store.intern(restricted)
            };
            if seen.insert(rid) {
                f(store.get(rid))?;
            }
        }
        Ok(())
    }

    /// As [`Self::all_matches`], but interning into a caller-provided store
    /// and returning ids — [`QueryPlan`] joins several patterns' relations
    /// in one shared store.
    fn matches_ids(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        store: &mut AssignStore,
    ) -> Vec<AssignId> {
        let results = self.evaluate(tree, index, store);
        let root = results.last().expect("plans are never empty");
        // Union the root's per-site assignment sets, first occurrence wins
        // (site order is deterministic, so the output order is too).
        let mut seen: FxHashSet<AssignId> = FxHashSet::default();
        let mut out = Vec::new();
        for &id in &root.ids {
            if seen.insert(id) {
                out.push(id);
            }
        }
        out
    }

    /// Bottom-up evaluation: one [`Matches`] per plan slot, computed in
    /// postorder so every child's match sites exist before its parent joins
    /// them.
    fn evaluate(&self, tree: &XmlTree, index: &TreeIndex, store: &mut AssignStore) -> Vec<Matches> {
        let mut results: Vec<Matches> = Vec::with_capacity(self.nodes.len());
        for plan_node in &self.nodes {
            let matches = match plan_node {
                PlanNode::Node {
                    label,
                    bindings,
                    children,
                } => self.eval_node(tree, index, store, label, bindings, children, &results),
                PlanNode::Descendant { inner } => eval_descendant(tree, &results[*inner]),
            };
            results.push(matches);
        }
        results
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_node(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        store: &mut AssignStore,
        label: &CompiledLabelTest,
        bindings: &[crate::pattern::AttrBinding],
        children: &[usize],
        results: &[Matches],
    ) -> Matches {
        // Join order: most selective (fewest matches) child edge first, so
        // the intermediate partial-assignment sets stay small and empty
        // joins fail before any merging happens. Ties keep pattern order.
        let mut edge_order: Vec<usize> = children.to_vec();
        edge_order.sort_by_key(|&c| results[c].total());
        if let Some(&first) = edge_order.first() {
            if results[first].total() == 0 {
                // Some sub-pattern matched nowhere: no candidate can win.
                return Matches::default();
            }
        }
        // Group every child edge's match sites by their tree parent, so a
        // candidate's join input is one hash lookup instead of a scan over
        // its children.
        let edge_maps: Vec<FxHashMap<NodeId, Vec<AssignId>>> = edge_order
            .iter()
            .map(|&c| {
                let mut map: FxHashMap<NodeId, Vec<AssignId>> = FxHashMap::default();
                for &(node, start, end) in &results[c].sites {
                    if let Some(parent) = tree.parent(node) {
                        map.entry(parent)
                            .or_default()
                            .extend_from_slice(&results[c].ids[start as usize..end as usize]);
                    }
                }
                map
            })
            .collect();

        let mut out = Matches::default();
        let mut partials: Vec<AssignId> = Vec::new();
        let mut next: Vec<AssignId> = Vec::new();
        let mut next_seen: FxHashSet<AssignId> = FxHashSet::default();
        'candidates: for &node in index.candidates(tree, label, bindings) {
            partials.clear();
            if bindings.is_empty() {
                // No bindings: the base is the empty assignment (id 0).
                partials.push(0);
            } else {
                let Some(base) = match_bindings(tree, node, bindings) else {
                    continue;
                };
                partials.push(store.intern(base));
            }
            for edge_map in &edge_maps {
                let Some(available) = edge_map.get(&node) else {
                    continue 'candidates;
                };
                next.clear();
                next_seen.clear();
                for &partial in &partials {
                    for &m in available {
                        if let Some(merged) = store.merge(partial, m) {
                            if next_seen.insert(merged) {
                                next.push(merged);
                            }
                        }
                    }
                }
                if next.is_empty() {
                    continue 'candidates;
                }
                std::mem::swap(&mut partials, &mut next);
            }
            out.push_site(node, &partials);
        }
        out
    }
}

/// The match sites of one plan node over one tree: `(node, span into `ids`)`
/// triples in deterministic node order, with all assignment ids in one flat
/// arena (no per-site allocation).
#[derive(Debug, Default)]
struct Matches {
    sites: Vec<(NodeId, u32, u32)>,
    ids: Vec<AssignId>,
}

impl Matches {
    fn push_site(&mut self, node: NodeId, ids: &[AssignId]) {
        let start = self.ids.len() as u32;
        self.ids.extend_from_slice(ids);
        self.sites.push((node, start, self.ids.len() as u32));
    }

    /// Total assignment count across sites (the join-ordering cardinality).
    fn total(&self) -> usize {
        self.ids.len()
    }
}

/// `//ϕ` — propagate every inner match site to all proper ancestors. Sparse
/// on purpose: cost is `O(matches × depth)`, not `O(nodes²)`.
fn eval_descendant(tree: &XmlTree, inner: &Matches) -> Matches {
    let mut acc: FxHashMap<NodeId, Vec<AssignId>> = FxHashMap::default();
    for &(node, start, end) in &inner.sites {
        let mut ancestor = tree.parent(node);
        while let Some(a) = ancestor {
            acc.entry(a)
                .or_default()
                .extend_from_slice(&inner.ids[start as usize..end as usize]);
            ancestor = tree.parent(a);
        }
    }
    let mut grouped: Vec<(NodeId, Vec<AssignId>)> = acc.into_iter().collect();
    grouped.sort_unstable_by_key(|&(node, _)| node);
    let mut out = Matches::default();
    for (node, mut ids) in grouped {
        // The same assignment may be witnessed at several descendants.
        ids.sort_unstable();
        ids.dedup();
        out.push_site(node, &ids);
    }
    out
}

// ---------------------------------------------------------------------------
// Query plans
// ---------------------------------------------------------------------------

/// A [`UnionQuery`] pre-planned for join-ordered evaluation: every pattern
/// of every branch becomes a [`PatternPlan`], and a branch's relations are
/// joined smallest-first in one shared assignment store.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    branches: Vec<BranchPlan>,
}

#[derive(Debug, Clone)]
struct BranchPlan {
    head: Vec<Var>,
    patterns: Vec<PatternPlan>,
}

impl QueryPlan {
    /// Plan `query` against `dtd`'s symbol table.
    pub fn new(query: &UnionQuery, dtd: &CompiledDtd) -> Self {
        QueryPlan::build(query, |p| PatternPlan::new(p, dtd))
    }

    /// Plan `query` with no DTD (pair with [`TreeIndex::without_dtd`]).
    pub fn without_dtd(query: &UnionQuery) -> Self {
        QueryPlan::build(query, PatternPlan::without_dtd)
    }

    fn build(query: &UnionQuery, plan: impl Fn(&TreePattern) -> PatternPlan) -> Self {
        QueryPlan {
            branches: query
                .branches()
                .iter()
                .map(|b| BranchPlan {
                    head: b.head().to_vec(),
                    patterns: b.patterns().iter().map(&plan).collect(),
                })
                .collect(),
        }
    }

    /// Evaluate the query over `tree`, returning the set of head tuples —
    /// the planned analogue of [`UnionQuery::evaluate`]. `index` must have
    /// been built over `tree` against the same DTD (or DTD-less) as this
    /// plan.
    pub fn evaluate(&self, tree: &XmlTree, index: &TreeIndex) -> BTreeSet<Vec<Value>> {
        self.evaluate_with(tree, index, &mut EvalScratch::new())
    }

    /// As [`Self::evaluate`], reusing a caller-held [`EvalScratch`] across
    /// documents (one store reset per branch instead of one allocation).
    pub fn evaluate_with(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        scratch: &mut EvalScratch,
    ) -> BTreeSet<Vec<Value>> {
        let mut out = BTreeSet::new();
        for branch in &self.branches {
            scratch.reset();
            branch.evaluate_into(tree, index, &mut scratch.store, &mut out);
        }
        out
    }

    /// Evaluate a Boolean query (planned analogue of
    /// [`UnionQuery::evaluate_boolean`]).
    pub fn evaluate_boolean(&self, tree: &XmlTree, index: &TreeIndex) -> bool {
        self.evaluate_boolean_with(tree, index, &mut EvalScratch::new())
    }

    /// As [`Self::evaluate_boolean`] on a caller-held [`EvalScratch`].
    pub fn evaluate_boolean_with(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        scratch: &mut EvalScratch,
    ) -> bool {
        self.branches.iter().any(|branch| {
            let mut rows = BTreeSet::new();
            scratch.reset();
            branch.evaluate_into(tree, index, &mut scratch.store, &mut rows);
            !rows.is_empty()
        })
    }
}

impl BranchPlan {
    fn evaluate_into(
        &self,
        tree: &XmlTree,
        index: &TreeIndex,
        store: &mut AssignStore,
        out: &mut BTreeSet<Vec<Value>>,
    ) {
        let mut relations: Vec<Vec<AssignId>> = Vec::with_capacity(self.patterns.len());
        for pattern in &self.patterns {
            let relation = pattern.matches_ids(tree, index, store);
            if relation.is_empty() {
                return;
            }
            relations.push(relation);
        }
        // Join order across conjuncts: smallest relation first.
        relations.sort_by_key(Vec::len);
        let mut acc: Vec<AssignId> = vec![0];
        let mut next: Vec<AssignId> = Vec::new();
        let mut seen: FxHashSet<AssignId> = FxHashSet::default();
        for relation in &relations {
            next.clear();
            seen.clear();
            for &a in &acc {
                for &b in relation {
                    if let Some(merged) = store.merge(a, b) {
                        if seen.insert(merged) {
                            next.push(merged);
                        }
                    }
                }
            }
            if next.is_empty() {
                return;
            }
            std::mem::swap(&mut acc, &mut next);
        }
        for id in acc {
            let assignment = store.get(id);
            out.insert(
                self.head
                    .iter()
                    .map(|v| {
                        assignment
                            .get(v)
                            .cloned()
                            .expect("head variable bound by construction")
                    })
                    .collect(),
            );
        }
    }
}

// Compile-time audit: plans and indexes are cached inside `xdx-core`'s
// `CompiledSetting` and shared across `BatchEngine` worker threads.
#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<PatternPlan>();
    check::<TreeIndex>();
    check::<QueryPlan>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::all_matches_reference;
    use crate::parser::parse_pattern;
    use xdx_xmltree::{Dtd, TreeBuilder};

    fn dtd() -> Dtd {
        Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .rule("author", "eps")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap()
    }

    fn tree() -> XmlTree {
        TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "CO")
                    .child("author", |a| a.attr("@name", "P").attr("@aff", "U"))
                    .child("author", |a| a.attr("@name", "S").attr("@aff", "Pr"))
            })
            .child("book", |b| {
                b.attr("@title", "CC")
                    .child("author", |a| a.attr("@name", "P").attr("@aff", "U"))
            })
            .build()
    }

    fn assert_planned_matches_reference(tree: &XmlTree, src: &str) {
        let d = dtd();
        let p = parse_pattern(src).unwrap();
        let mut reference = all_matches_reference(tree, &p);
        reference.sort();

        let plan = PatternPlan::new(&p, d.compiled());
        let index = TreeIndex::new(tree, d.compiled());
        let mut planned = plan.all_matches(tree, &index);
        planned.sort();
        assert_eq!(planned, reference, "with DTD: {src}");

        let plan = PatternPlan::without_dtd(&p);
        let index = TreeIndex::without_dtd(tree);
        let mut planned = plan.all_matches(tree, &index);
        planned.sort();
        assert_eq!(planned, reference, "DTD-less: {src}");
    }

    #[test]
    fn planned_matches_agree_with_reference() {
        let t = tree();
        for src in [
            "book(@title=$x)[author(@name=$y)]",
            "author(@name=$y)",
            "//author",
            "db[//db]",
            "db[//author(@aff=$a)]",
            "_(@name=$n)",
            "db[_[_(@aff=$a)]]",
            "db[book(@title=$x), book(@title=$y)]",
            "book(@title=\"CC\")[author(@name=$y)]",
            "book(@year=$y)",
            "//_[_(@name=$n)]",
            "//book[//author(@aff=$a)]",
            "db[book[author(@name=$x)], book(@title=$t)[author(@name=$x)]]",
        ] {
            assert_planned_matches_reference(&t, src);
        }
    }

    #[test]
    fn undeclared_labels_keep_the_string_fallback() {
        let mut t = XmlTree::new("db");
        let j = t.add_child(t.root(), "journal");
        t.set_attr(j, "@title", "JACM");
        let deeper = t.add_child(j, "issue");
        t.set_attr(deeper, "@title", "55-2");
        for src in [
            "journal(@title=$x)",
            "//issue(@title=$x)",
            "journal[issue(@title=$x)]",
            "db[//issue]",
        ] {
            assert_planned_matches_reference(&t, src);
        }
    }

    #[test]
    fn binding_guarded_wildcards_use_the_attribute_index() {
        let d = dtd();
        let t = tree();
        // Semantics: the attr-bucket candidates agree with the oracle on
        // every wildcard shape, including attrs nobody carries.
        for src in [
            "_(@name=$n)",
            "_(@title=$t)",
            "_(@name=$n, @aff=$a)",
            "_(@none=$x)",
            "db[_(@aff=\"Pr\")]",
            "//_(@title=$t)",
        ] {
            assert_planned_matches_reference(&t, src);
        }
        // Mechanics: the bucket really is smaller than the preorder list,
        // and it is built lazily (only a wildcard-with-bindings lookup
        // forces it).
        let index = TreeIndex::new(&t, d.compiled());
        assert!(index.by_attr.get().is_none(), "no lookup yet → no map");
        let title: AttrName = "@title".into();
        let name: AttrName = "@name".into();
        assert_eq!(index.attr_buckets(&t).get(&title).map(Vec::len), Some(2));
        assert_eq!(index.attr_buckets(&t).get(&name).map(Vec::len), Some(3));
        assert_eq!(index.nodes.len(), 6);
    }

    #[test]
    fn selectivity_order_does_not_change_semantics() {
        // A branching pattern where one child edge has many matches and the
        // other exactly one: whichever joins first, the result is the same.
        let t = tree();
        assert_planned_matches_reference(&t, "db[book(@title=$x), book(@title=\"CC\")]");
        assert_planned_matches_reference(&t, "book[author(@name=$x), author(@aff=\"Pr\")]");
    }

    #[test]
    fn query_plans_agree_with_reference_joins() {
        use crate::query::ConjunctiveTreeQuery;
        let d = dtd();
        let t = tree();
        let q = UnionQuery::new(vec![
            ConjunctiveTreeQuery::new(
                ["x", "y"],
                vec![
                    parse_pattern("book(@title=$t)[author(@name=$x)]").unwrap(),
                    parse_pattern("book(@title=$t)[author(@name=$y)]").unwrap(),
                ],
            )
            .unwrap(),
            ConjunctiveTreeQuery::new(
                ["x", "x"],
                vec![parse_pattern("author(@aff=\"U\", @name=$x)").unwrap()],
            )
            .unwrap(),
        ])
        .unwrap();
        let reference = q.evaluate(&t);
        let planned =
            QueryPlan::new(&q, d.compiled()).evaluate(&t, &TreeIndex::new(&t, d.compiled()));
        assert_eq!(planned, reference);
        let dtdless = QueryPlan::without_dtd(&q).evaluate(&t, &TreeIndex::without_dtd(&t));
        assert_eq!(dtdless, reference);
        assert!(QueryPlan::new(&q, d.compiled())
            .evaluate_boolean(&t, &TreeIndex::new(&t, d.compiled())));
    }

    #[test]
    fn scratch_reuse_is_invisible_to_results() {
        // One scratch + one index slot reused across distinct documents must
        // produce exactly what fresh per-document state produces.
        let d = dtd();
        let q = UnionQuery::single(
            crate::query::ConjunctiveTreeQuery::new(
                ["x"],
                vec![parse_pattern("book(@title=$t)[author(@name=$x)]").unwrap()],
            )
            .unwrap(),
        );
        let plan = QueryPlan::new(&q, d.compiled());
        let pattern = parse_pattern("book(@title=$t)[author(@name=$x)]").unwrap();
        let pplan = PatternPlan::new(&pattern, d.compiled());
        let keep: BTreeSet<Var> = [Var::new("x")].into_iter().collect();

        let mut scratch = EvalScratch::new();
        let mut index = TreeIndex::empty();
        let docs: Vec<XmlTree> = (0..6)
            .map(|i| {
                let mut t = XmlTree::new("db");
                for b in 0..=i {
                    let book = t.add_child(t.root(), "book");
                    t.set_attr(book, "@title", format!("T{b}"));
                    for a in 0..b {
                        let author = t.add_child(book, if a % 2 == 0 { "author" } else { "odd" });
                        t.set_attr(author, "@name", format!("N{a}"));
                    }
                }
                t
            })
            .collect();
        for tree in &docs {
            index.rebuild(tree, d.compiled());
            let fresh_index = TreeIndex::new(tree, d.compiled());
            let warm = plan.evaluate_with(tree, &index, &mut scratch);
            assert_eq!(warm, plan.evaluate(tree, &fresh_index));
            assert_eq!(
                plan.evaluate_boolean_with(tree, &index, &mut scratch),
                plan.evaluate_boolean(tree, &fresh_index)
            );
            let mut warm_restricted: Vec<Assignment> = Vec::new();
            pplan
                .try_for_each_restricted_match_with(tree, &index, &keep, &mut scratch, |a| {
                    warm_restricted.push(a.clone());
                    Ok::<(), ()>(())
                })
                .unwrap();
            let mut fresh_restricted: Vec<Assignment> = Vec::new();
            pplan
                .try_for_each_restricted_match(tree, &fresh_index, &keep, |a| {
                    fresh_restricted.push(a.clone());
                    Ok::<(), ()>(())
                })
                .unwrap();
            assert_eq!(warm_restricted, fresh_restricted);
        }
        // DTD-less rebuild agrees with a fresh DTD-less index.
        let mut dtdless = TreeIndex::empty();
        for tree in &docs {
            dtdless.rebuild_without_dtd(tree);
            let plan = PatternPlan::without_dtd(&pattern);
            let mut a = plan.all_matches(tree, &dtdless);
            let mut b = plan.all_matches(tree, &TreeIndex::without_dtd(tree));
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn assignment_store_merges_and_memoises() {
        let mut store = AssignStore::new();
        let mut a = Assignment::new();
        a.insert(Var::new("x"), Value::constant("1"));
        let mut b = Assignment::new();
        b.insert(Var::new("y"), Value::constant("2"));
        let mut clash = Assignment::new();
        clash.insert(Var::new("x"), Value::constant("other"));
        let (ia, ib, ic) = (
            store.intern(a.clone()),
            store.intern(b),
            store.intern(clash),
        );
        assert_eq!(store.intern(a), ia, "interning is idempotent");
        let merged = store.merge(ia, ib).unwrap();
        assert_eq!(store.get(merged).len(), 2);
        assert_eq!(store.merge(ib, ia).unwrap(), merged, "merge is symmetric");
        assert_eq!(store.merge(ia, ic), None, "clashes are detected");
        assert_eq!(store.merge(0, ia), Some(ia), "empty is the unit");
        assert_eq!(store.merge(merged, merged), Some(merged));
    }
}
