//! Homomorphisms between XML trees (Section 6.1).
//!
//! A homomorphism `h : T → T'` maps nodes to nodes and values to values such
//! that constants are fixed, the root maps to the root, the child relation
//! and labels are preserved, and attribute values are mapped consistently
//! (`h(ρ@a(v)) = ρ@a(h(v))`). Lemma 6.14 shows CTQ//,∪ queries are preserved
//! under homomorphisms, and Lemma 6.15 shows every chase tree maps
//! homomorphically into every solution — together these give the correctness
//! of answering queries on the canonical solution.

use std::collections::BTreeMap;
use xdx_xmltree::{NodeId, NullId, Value, XmlTree};

/// A homomorphism between two XML trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Homomorphism {
    /// Node mapping (every reachable node of the source tree is a key).
    pub node_map: BTreeMap<NodeId, NodeId>,
    /// Value mapping on nulls (constants are mapped to themselves).
    pub null_map: BTreeMap<NullId, Value>,
}

impl Homomorphism {
    /// The image of a value under the homomorphism.
    pub fn map_value(&self, v: &Value) -> Option<Value> {
        match v {
            Value::Const(_) => Some(v.clone()),
            Value::Null(id) => self.null_map.get(id).cloned(),
        }
    }
}

/// Check whether `h` is a homomorphism from `from` to `to`.
pub fn is_homomorphism(from: &XmlTree, to: &XmlTree, h: &Homomorphism) -> bool {
    // Root is mapped to root.
    if h.node_map.get(&from.root()) != Some(&to.root()) {
        return false;
    }
    for node in from.nodes() {
        let Some(&image) = h.node_map.get(&node) else {
            return false;
        };
        // Labels preserved.
        if from.label(node) != to.label(image) {
            return false;
        }
        // Child relation preserved.
        for &child in from.children(node) {
            match h.node_map.get(&child) {
                Some(&child_image) if to.parent(child_image) == Some(image) => {}
                _ => return false,
            }
        }
        // Attribute values preserved through the value map.
        for (attr, value) in from.attrs(node) {
            let Some(expected) = h.map_value(value) else {
                return false;
            };
            match to.attr(image, attr) {
                Some(actual) if *actual == expected => {}
                _ => return false,
            }
        }
    }
    true
}

/// Search for a homomorphism from `from` to `to`. Returns `None` if none
/// exists.
///
/// The search is a straightforward backtracking over candidate images of
/// each node (children of the image of the parent, label-compatible) with
/// consistent null bindings; worst-case exponential, which is fine for the
/// solution sizes handled in tests and benchmarks (finding homomorphisms is
/// NP-complete in general).
pub fn find_homomorphism(from: &XmlTree, to: &XmlTree) -> Option<Homomorphism> {
    if from.label(from.root()) != to.label(to.root()) {
        return None;
    }
    let mut h = Homomorphism::default();
    h.node_map.insert(from.root(), to.root());
    if !bind_attrs(from, from.root(), to, to.root(), &mut h) {
        return None;
    }
    let order: Vec<NodeId> = from
        .nodes()
        .into_iter()
        .filter(|&n| n != from.root())
        .collect();
    if assign(from, to, &order, 0, &mut h) {
        Some(h)
    } else {
        None
    }
}

fn assign(
    from: &XmlTree,
    to: &XmlTree,
    order: &[NodeId],
    idx: usize,
    h: &mut Homomorphism,
) -> bool {
    if idx == order.len() {
        return true;
    }
    let node = order[idx];
    let parent = from.parent(node).expect("non-root nodes have parents");
    let parent_image = *h
        .node_map
        .get(&parent)
        .expect("parents precede children in preorder");
    let candidates: Vec<NodeId> = to
        .children(parent_image)
        .iter()
        .copied()
        .filter(|&c| to.label(c) == from.label(node))
        .collect();
    for candidate in candidates {
        let saved_nulls = h.null_map.clone();
        h.node_map.insert(node, candidate);
        if bind_attrs(from, node, to, candidate, h) && assign(from, to, order, idx + 1, h) {
            return true;
        }
        h.null_map = saved_nulls;
        h.node_map.remove(&node);
    }
    false
}

/// Try to extend the null map so that all attributes of `node` map onto the
/// attributes of `image`. Returns false (leaving `h.null_map` possibly
/// partially extended — callers restore it) on mismatch.
fn bind_attrs(
    from: &XmlTree,
    node: NodeId,
    to: &XmlTree,
    image: NodeId,
    h: &mut Homomorphism,
) -> bool {
    for (attr, value) in from.attrs(node) {
        let Some(target) = to.attr(image, attr) else {
            return false;
        };
        match value {
            Value::Const(_) => {
                if value != target {
                    return false;
                }
            }
            Value::Null(id) => match h.null_map.get(id) {
                Some(bound) => {
                    if bound != target {
                        return false;
                    }
                }
                None => {
                    h.null_map.insert(*id, target.clone());
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_xmltree::{NullGen, TreeBuilder, XmlTree};

    /// The canonical-style tree: bib with one writer P having a work with a
    /// null year.
    fn canonical_like() -> XmlTree {
        let mut gen = NullGen::new();
        let mut t = XmlTree::new("bib");
        let w = t.add_child(t.root(), "writer");
        t.set_attr(w, "@name", "Papadimitriou");
        let k = t.add_child(w, "work");
        t.set_attr(k, "@title", "Computational Complexity");
        t.set_attr(k, "@year", gen.fresh_value());
        t
    }

    /// A "solution" with more writers and a concrete year.
    fn bigger_solution() -> XmlTree {
        TreeBuilder::new("bib")
            .child("writer", |w| {
                w.attr("@name", "Papadimitriou")
                    .child("work", |k| {
                        k.attr("@title", "Computational Complexity")
                            .attr("@year", "1994")
                    })
                    .child("work", |k| {
                        k.attr("@title", "Combinatorial Optimization")
                            .attr("@year", "1982")
                    })
            })
            .child("writer", |w| {
                w.attr("@name", "Steiglitz").child("work", |k| {
                    k.attr("@title", "Combinatorial Optimization")
                        .attr("@year", "1982")
                })
            })
            .build()
    }

    #[test]
    fn homomorphism_into_larger_solution_exists() {
        let small = canonical_like();
        let big = bigger_solution();
        let h = find_homomorphism(&small, &big).expect("homomorphism should exist");
        assert!(is_homomorphism(&small, &big, &h));
        // The null year must have been mapped to the constant 1994.
        assert_eq!(h.null_map.len(), 1);
        assert_eq!(
            h.null_map.values().next().unwrap(),
            &xdx_xmltree::Value::constant("1994")
        );
    }

    #[test]
    fn no_homomorphism_when_constants_clash() {
        let mut small = canonical_like();
        // Force a constant year that the big tree does not have for this work.
        let work = small.descendants(small.root())[1];
        small.set_attr(work, "@year", "2001");
        assert!(find_homomorphism(&small, &bigger_solution()).is_none());
    }

    #[test]
    fn no_homomorphism_when_structure_is_missing() {
        let big = bigger_solution();
        let mut small = canonical_like();
        // Add a writer that the big tree does not have.
        let w = small.add_child(small.root(), "writer");
        small.set_attr(w, "@name", "Knuth");
        assert!(find_homomorphism(&small, &big).is_none());
        // But the reverse direction also fails (big has attributes/structure
        // the small tree cannot absorb).
        assert!(find_homomorphism(&big, &small).is_none());
    }

    #[test]
    fn same_null_must_map_consistently() {
        // Two works share the same null year; a target where the two works
        // have different years admits no homomorphism.
        let mut gen = NullGen::new();
        let shared = gen.fresh_value();
        let mut small = XmlTree::new("bib");
        let w = small.add_child(small.root(), "writer");
        small.set_attr(w, "@name", "P");
        for title in ["A", "B"] {
            let k = small.add_child(w, "work");
            small.set_attr(k, "@title", title);
            small.set_attr(k, "@year", shared.clone());
        }

        let make_big = |year_a: &str, year_b: &str| {
            TreeBuilder::new("bib")
                .child("writer", |wr| {
                    wr.attr("@name", "P")
                        .child("work", |k| k.attr("@title", "A").attr("@year", year_a))
                        .child("work", |k| k.attr("@title", "B").attr("@year", year_b))
                })
                .build()
        };
        assert!(find_homomorphism(&small, &make_big("1999", "1999")).is_some());
        assert!(find_homomorphism(&small, &make_big("1999", "2000")).is_none());
    }

    #[test]
    fn identity_homomorphism() {
        let t = bigger_solution();
        let h = find_homomorphism(&t, &t).expect("identity exists");
        assert!(is_homomorphism(&t, &t, &h));
        assert!(h.null_map.is_empty());
    }

    #[test]
    fn root_labels_must_agree() {
        let a = XmlTree::new("bib");
        let b = XmlTree::new("db");
        assert!(find_homomorphism(&a, &b).is_none());
    }

    #[test]
    fn is_homomorphism_rejects_bogus_maps() {
        let small = canonical_like();
        let big = bigger_solution();
        let mut h = find_homomorphism(&small, &big).unwrap();
        // Redirect the writer node to the wrong writer.
        let writer_small = small.children(small.root())[0];
        let wrong_writer = big.children(big.root())[1];
        h.node_map.insert(writer_small, wrong_writer);
        assert!(!is_homomorphism(&small, &big, &h));
    }

    #[test]
    fn homomorphisms_preserve_ctq_queries() {
        // Lemma 6.14 on a concrete instance: a query true in the small tree
        // is true in the big one whenever a homomorphism exists.
        use crate::parser::parse_pattern;
        use crate::query::ConjunctiveTreeQuery;
        let small = canonical_like();
        let big = bigger_solution();
        assert!(find_homomorphism(&small, &big).is_some());
        let q = ConjunctiveTreeQuery::new(
            ["x"],
            vec![
                parse_pattern("writer(@name=$x)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap();
        let small_answers = q.evaluate(&small);
        let big_answers = q.evaluate(&big);
        for row in small_answers {
            // constant tuples survive
            if row.iter().all(|v| v.is_const()) {
                assert!(big_answers.contains(&row));
            }
        }
    }
}
