//! The tree-pattern formula AST (Section 3.1).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use xdx_xmltree::{AttrName, ElementType};

/// A variable ranging over attribute values.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

/// A term on the right-hand side of an attribute binding `@a = t`.
///
/// The paper only uses variables; constants are a convenience for writing
/// queries with built-in selections (they are equivalent to using a fresh
/// variable plus an equality filter).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant string.
    Const(String),
}

impl Term {
    /// Build a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Var::new(name))
    }

    /// Build a constant term.
    pub fn constant(s: impl Into<String>) -> Self {
        Term::Const(s.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

/// The label test of an attribute formula: either a concrete element type or
/// the wildcard `_`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LabelTest {
    /// Matches any element type.
    Wildcard,
    /// Matches exactly this element type.
    Element(ElementType),
}

impl LabelTest {
    /// Does the test accept `label`?
    pub fn accepts(&self, label: &ElementType) -> bool {
        match self {
            LabelTest::Wildcard => true,
            LabelTest::Element(e) => e == label,
        }
    }
}

impl fmt::Display for LabelTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelTest::Wildcard => write!(f, "_"),
            LabelTest::Element(e) => write!(f, "{e}"),
        }
    }
}

/// One attribute binding `@a = t` of an attribute formula.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttrBinding {
    /// The attribute name.
    pub attr: AttrName,
    /// The term the attribute value is compared/bound to.
    pub term: Term,
}

/// An attribute formula `ℓ(@a1 = t1, …, @an = tn)` (possibly with the
/// wildcard as label and possibly without bindings).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttrFormula {
    /// The label test.
    pub label: LabelTest,
    /// The attribute bindings.
    pub bindings: Vec<AttrBinding>,
}

impl AttrFormula {
    /// An attribute formula testing only the element type.
    pub fn element(label: impl Into<ElementType>) -> Self {
        AttrFormula {
            label: LabelTest::Element(label.into()),
            bindings: Vec::new(),
        }
    }

    /// The wildcard attribute formula `_`.
    pub fn wildcard() -> Self {
        AttrFormula {
            label: LabelTest::Wildcard,
            bindings: Vec::new(),
        }
    }

    /// Add a binding `@attr = $var`.
    pub fn bind_var(mut self, attr: impl Into<AttrName>, var: impl Into<Var>) -> Self {
        self.bindings.push(AttrBinding {
            attr: attr.into(),
            term: Term::Var(var.into()),
        });
        self
    }

    /// Add a binding `@attr = "const"`.
    pub fn bind_const(mut self, attr: impl Into<AttrName>, value: impl Into<String>) -> Self {
        self.bindings.push(AttrBinding {
            attr: attr.into(),
            term: Term::Const(value.into()),
        });
        self
    }

    /// The erasure `α°` of Claim 4.2: forget all attribute bindings.
    pub fn erase_attributes(&self) -> AttrFormula {
        AttrFormula {
            label: self.label.clone(),
            bindings: Vec::new(),
        }
    }

    /// Variables occurring in the bindings.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.bindings
            .iter()
            .filter_map(|b| match &b.term {
                Term::Var(v) => Some(v.clone()),
                Term::Const(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for AttrFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)?;
        if !self.bindings.is_empty() {
            let parts: Vec<String> = self
                .bindings
                .iter()
                .map(|b| format!("{} = {}", b.attr, b.term))
                .collect();
            write!(f, "({})", parts.join(", "))?;
        }
        Ok(())
    }
}

/// A tree-pattern formula (Section 3.1):
/// `ϕ ::= α | α[ϕ, …, ϕ] | //ϕ`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum TreePattern {
    /// An attribute formula, possibly with child sub-patterns.
    Node {
        /// The attribute formula at this node.
        attr: AttrFormula,
        /// Sub-patterns, each of which must be witnessed by some child.
        children: Vec<TreePattern>,
    },
    /// `//ϕ`: some proper descendant witnesses `ϕ`.
    Descendant(Box<TreePattern>),
}

impl TreePattern {
    /// A pattern consisting of a bare attribute formula.
    pub fn leaf(attr: AttrFormula) -> Self {
        TreePattern::Node {
            attr,
            children: Vec::new(),
        }
    }

    /// A pattern testing only an element type, with no bindings or children.
    pub fn elem(label: impl Into<ElementType>) -> Self {
        TreePattern::leaf(AttrFormula::element(label))
    }

    /// A wildcard pattern with no bindings or children.
    pub fn any() -> Self {
        TreePattern::leaf(AttrFormula::wildcard())
    }

    /// A pattern `α[children…]`.
    pub fn node(attr: AttrFormula, children: Vec<TreePattern>) -> Self {
        TreePattern::Node { attr, children }
    }

    /// Wrap the pattern in a descendant step `//ϕ`.
    pub fn descendant(inner: TreePattern) -> Self {
        TreePattern::Descendant(Box::new(inner))
    }

    /// Add a child sub-pattern (builder style). Wrapping descendants are
    /// traversed so `//a` gains the child under `a`.
    pub fn with_child(self, child: TreePattern) -> Self {
        match self {
            TreePattern::Node { attr, mut children } => {
                children.push(child);
                TreePattern::Node { attr, children }
            }
            TreePattern::Descendant(inner) => {
                TreePattern::Descendant(Box::new(inner.with_child(child)))
            }
        }
    }

    /// The free variables of the pattern, in sorted order.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            TreePattern::Node { attr, children } => {
                out.extend(attr.variables());
                for c in children {
                    c.collect_vars(out);
                }
            }
            TreePattern::Descendant(inner) => inner.collect_vars(out),
        }
    }

    /// Does the pattern use the descendant axis `//` anywhere?
    pub fn uses_descendant(&self) -> bool {
        match self {
            TreePattern::Descendant(_) => true,
            TreePattern::Node { children, .. } => children.iter().any(|c| c.uses_descendant()),
        }
    }

    /// Does the pattern use the wildcard label anywhere?
    pub fn uses_wildcard(&self) -> bool {
        match self {
            TreePattern::Descendant(inner) => inner.uses_wildcard(),
            TreePattern::Node { attr, children } => {
                matches!(attr.label, LabelTest::Wildcard)
                    || children.iter().any(|c| c.uses_wildcard())
            }
        }
    }

    /// Is the pattern anchored at the given root element type (its top-level
    /// form is `root[…]` — no descendant, no wildcard at the top)?
    pub fn starts_at_root(&self, root: &ElementType) -> bool {
        match self {
            TreePattern::Node { attr, .. } => attr.label == LabelTest::Element(root.clone()),
            TreePattern::Descendant(_) => false,
        }
    }

    /// Is the pattern *fully specified* in the sense of Definition 5.10 with
    /// respect to the given root type: of the form `r[ϕ1, …, ϕk]` where the
    /// `ϕi` use neither descendant nor wildcard?
    pub fn is_fully_specified(&self, root: &ElementType) -> bool {
        self.starts_at_root(root) && !self.uses_descendant() && !self.uses_wildcard()
    }

    /// Is this a *path pattern* (Section 4): at most one child at every
    /// level?
    pub fn is_path_pattern(&self) -> bool {
        match self {
            TreePattern::Descendant(inner) => inner.is_path_pattern(),
            TreePattern::Node { children, .. } => {
                children.len() <= 1 && children.iter().all(|c| c.is_path_pattern())
            }
        }
    }

    /// The erasure `ϕ°` of Claim 4.2: drop every attribute binding, keeping
    /// only the structural skeleton.
    pub fn erase_attributes(&self) -> TreePattern {
        match self {
            TreePattern::Node { attr, children } => TreePattern::Node {
                attr: attr.erase_attributes(),
                children: children.iter().map(|c| c.erase_attributes()).collect(),
            },
            TreePattern::Descendant(inner) => {
                TreePattern::Descendant(Box::new(inner.erase_attributes()))
            }
        }
    }

    /// Element types mentioned anywhere in the pattern.
    pub fn element_types(&self) -> BTreeSet<ElementType> {
        let mut out = BTreeSet::new();
        self.collect_element_types(&mut out);
        out
    }

    fn collect_element_types(&self, out: &mut BTreeSet<ElementType>) {
        match self {
            TreePattern::Node { attr, children } => {
                if let LabelTest::Element(e) = &attr.label {
                    out.insert(e.clone());
                }
                for c in children {
                    c.collect_element_types(out);
                }
            }
            TreePattern::Descendant(inner) => inner.collect_element_types(out),
        }
    }

    /// Attribute names mentioned anywhere in the pattern.
    pub fn attribute_names(&self) -> BTreeSet<AttrName> {
        let mut out = BTreeSet::new();
        fn go(p: &TreePattern, out: &mut BTreeSet<AttrName>) {
            match p {
                TreePattern::Node { attr, children } => {
                    out.extend(attr.bindings.iter().map(|b| b.attr.clone()));
                    for c in children {
                        go(c, out);
                    }
                }
                TreePattern::Descendant(inner) => go(inner, out),
            }
        }
        go(self, &mut out);
        out
    }

    /// Are all variable occurrences in this pattern distinct? (The proviso
    /// the paper imposes on *source* patterns in Section 4.)
    pub fn has_distinct_variables(&self) -> bool {
        fn collect(p: &TreePattern, seen: &mut Vec<Var>) -> bool {
            match p {
                TreePattern::Node { attr, children } => {
                    for b in &attr.bindings {
                        if let Term::Var(v) = &b.term {
                            if seen.contains(v) {
                                return false;
                            }
                            seen.push(v.clone());
                        }
                    }
                    children.iter().all(|c| collect(c, seen))
                }
                TreePattern::Descendant(inner) => collect(inner, seen),
            }
        }
        collect(self, &mut Vec::new())
    }

    /// Number of AST nodes, used as a size measure in complexity experiments.
    pub fn size(&self) -> usize {
        match self {
            TreePattern::Node { attr, children } => {
                1 + attr.bindings.len() + children.iter().map(|c| c.size()).sum::<usize>()
            }
            TreePattern::Descendant(inner) => 1 + inner.size(),
        }
    }
}

impl fmt::Display for TreePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreePattern::Node { attr, children } => {
                write!(f, "{attr}")?;
                if !children.is_empty() {
                    let parts: Vec<String> = children.iter().map(|c| c.to_string()).collect();
                    write!(f, "[{}]", parts.join(", "))?;
                }
                Ok(())
            }
            TreePattern::Descendant(inner) => write!(f, "//{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `db[book(@title=$x)[author(@name=$y)]]` — the source pattern of
    /// Example 3.4.
    fn example_source_pattern() -> TreePattern {
        TreePattern::node(
            AttrFormula::element("db"),
            vec![TreePattern::node(
                AttrFormula::element("book").bind_var("@title", "x"),
                vec![TreePattern::leaf(
                    AttrFormula::element("author").bind_var("@name", "y"),
                )],
            )],
        )
    }

    #[test]
    fn free_vars_and_display() {
        let p = example_source_pattern();
        let vars: Vec<String> = p
            .free_vars()
            .iter()
            .map(|v| v.as_str().to_string())
            .collect();
        assert_eq!(vars, vec!["x", "y"]);
        assert_eq!(p.to_string(), "db[book(@title = $x)[author(@name = $y)]]");
    }

    #[test]
    fn classification_predicates() {
        let p = example_source_pattern();
        let root = ElementType::new("db");
        assert!(p.is_fully_specified(&root));
        assert!(!p.uses_descendant());
        assert!(!p.uses_wildcard());
        assert!(p.is_path_pattern());
        assert!(p.has_distinct_variables());

        let with_desc = TreePattern::descendant(TreePattern::elem("author"));
        assert!(with_desc.uses_descendant());
        assert!(!with_desc.starts_at_root(&root));
        assert!(!with_desc.is_fully_specified(&root));

        let with_wild = TreePattern::node(AttrFormula::element("db"), vec![TreePattern::any()]);
        assert!(with_wild.uses_wildcard());
        assert!(!with_wild.is_fully_specified(&root));

        // two children at one level is not a path pattern
        let branching = TreePattern::node(
            AttrFormula::element("db"),
            vec![TreePattern::elem("a"), TreePattern::elem("b")],
        );
        assert!(!branching.is_path_pattern());
    }

    #[test]
    fn repeated_variables_are_detected() {
        let p = TreePattern::leaf(
            AttrFormula::element("l")
                .bind_var("@a1", "z")
                .bind_var("@a2", "z"),
        );
        assert!(!p.has_distinct_variables());
        assert_eq!(p.free_vars().len(), 1);
    }

    #[test]
    fn erasure_drops_bindings_everywhere() {
        let p = example_source_pattern();
        let erased = p.erase_attributes();
        assert!(erased.free_vars().is_empty());
        assert_eq!(erased.to_string(), "db[book[author]]");
        assert_eq!(erased.element_types(), p.element_types());
    }

    #[test]
    fn element_types_and_attribute_names() {
        let p = example_source_pattern();
        let els: Vec<String> = p
            .element_types()
            .iter()
            .map(|e| e.as_str().to_string())
            .collect();
        assert_eq!(els, vec!["author", "book", "db"]);
        let attrs: Vec<String> = p
            .attribute_names()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(attrs, vec!["@name", "@title"]);
    }

    #[test]
    fn with_child_descends_through_descendant_wrappers() {
        let p = TreePattern::descendant(TreePattern::elem("book"))
            .with_child(TreePattern::elem("author"));
        assert_eq!(p.to_string(), "//book[author]");
    }

    #[test]
    fn size_counts_bindings_and_nodes() {
        assert_eq!(example_source_pattern().size(), 5);
        assert_eq!(TreePattern::any().size(), 1);
        assert_eq!(TreePattern::descendant(TreePattern::elem("a")).size(), 2);
    }

    #[test]
    fn constants_in_terms() {
        let p = TreePattern::leaf(
            AttrFormula::element("work").bind_const("@title", "Computational Complexity"),
        );
        assert!(p.free_vars().is_empty());
        assert!(p.to_string().contains("\"Computational Complexity\""));
    }
}
