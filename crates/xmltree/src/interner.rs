//! Symbol interning: dense `u32` ids for element types and attribute names.
//!
//! The reference code paths key everything by [`ElementType`] /
//! [`AttrName`] — `Arc<str>` newtypes whose comparisons walk string bytes and
//! whose maps are `BTreeMap`s. The compiled fast path
//! ([`crate::compiled::CompiledDtd`]) instead interns every name occurring in
//! a DTD into a dense [`Sym`] id, so per-node work indexes flat `Vec`s and
//! compares `u32`s.
//!
//! The interner is per-DTD (not global): ids are dense in `0..len`, which is
//! what lets the compiled transition tables be plain `states × alphabet`
//! arrays, and dropping a DTD drops its symbol table with it.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A dense interned symbol id (index into an [`Interner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of the symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a symbol from a dense index (must come from the same interner).
    #[inline]
    pub fn from_index(i: usize) -> Sym {
        Sym(u32::try_from(i).expect("symbol table exceeds u32::MAX entries"))
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A name-to-dense-id table (generic over the name type so both
/// [`ElementType`] and [`AttrName`] use the same machinery).
///
/// [`ElementType`]: crate::name::ElementType
/// [`AttrName`]: crate::name::AttrName
#[derive(Debug, Clone, Default)]
pub struct Interner<T> {
    map: HashMap<T, Sym>,
    names: Vec<T>,
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            map: HashMap::new(),
            names: Vec::new(),
        }
    }

    /// Intern `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &T) -> Sym {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Sym::from_index(self.names.len());
        self.map.insert(name.clone(), sym);
        self.names.push(name.clone());
        sym
    }

    /// Look up an already-interned name.
    #[inline]
    pub fn get(&self, name: &T) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The name behind a symbol.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &T {
        &self.names[sym.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names in id order.
    pub fn names(&self) -> &[T] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::ElementType;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i: Interner<ElementType> = Interner::new();
        let a = i.intern(&ElementType::new("a"));
        let b = i.intern(&ElementType::new("b"));
        let a2 = i.intern(&ElementType::new("a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), &ElementType::new("a"));
        assert_eq!(i.get(&ElementType::new("b")), Some(b));
        assert_eq!(i.get(&ElementType::new("zzz")), None);
    }

    #[test]
    fn sym_round_trips_through_index() {
        let s = Sym::from_index(17);
        assert_eq!(s.index(), 17);
        assert_eq!(format!("{s}"), "s17");
    }
}
