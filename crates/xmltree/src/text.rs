//! A compact, lossless text serialization of [`XmlTree`]s.
//!
//! The wire protocol of `xdx-server` ships whole documents (source trees in
//! requests, canonical solutions in responses) as text inside binary frames,
//! so trees need a serialization that
//!
//! * round-trips **exactly** — labels, attribute names, constant values
//!   (arbitrary strings), null identifiers, sibling order;
//! * is safe against adversarial input — the parser is **iterative** (an
//!   explicit parent stack instead of recursion), so a deeply nested
//!   document cannot overflow the stack of the thread decoding it, and
//!   every malformed input is a structured [`TreeTextError`], never a
//!   panic;
//! * stays human-readable for the common case (`db[book(@title="CO")]`).
//!
//! ## Grammar
//!
//! ```text
//! tree     ::= node
//! node     ::= name attrs? children?
//! attrs    ::= '(' binding (',' binding)* ')'
//! binding  ::= name '=' value
//! value    ::= quoted                (constant)
//!            | ('⊥' | '~') DIGITS   (null; the serializer emits '⊥')
//! children ::= '[' node (',' node)* ']'
//! name     ::= IDENT | quoted        (IDENT: [A-Za-z0-9_@.-]+)
//! quoted   ::= '"' ( [^"\\] | '\\' '"' | '\\' '\\' )* '"'
//! ```
//!
//! Whitespace between tokens is ignored when parsing; the serializer emits
//! none. Names that are not plain identifiers (or are empty) are emitted
//! quoted, so *every* tree — whatever its labels contain — round-trips.

use crate::lexer::{Cursor, LexError};
use crate::limits::{MAX_DOCUMENT_BYTES, MAX_DOCUMENT_DEPTH, MAX_DOCUMENT_NODES};
use crate::name::ElementType;
use crate::tree::{NodeId, XmlTree};
use crate::value::{NullId, Value};
use std::fmt;

/// Error raised by [`parse_tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTextError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TreeTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tree text error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for TreeTextError {}

impl From<LexError> for TreeTextError {
    fn from(e: LexError) -> Self {
        TreeTextError {
            position: e.position,
            message: e.message,
        }
    }
}

/// The identifier alphabet of this grammar (deliberately ASCII-only — the
/// serializer quotes anything else).
fn ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '@' | '.' | '-')
}

/// Is `s` a plain identifier the serializer may emit unquoted?
fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(ident_char)
}

fn push_name(out: &mut String, name: &str) {
    if is_ident(name) {
        out.push_str(name);
    } else {
        push_quoted(out, name);
    }
}

fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize `tree` to its text form (see the module docs). Iterative — the
/// traversal stack lives on the heap, bounded by the tree depth, so
/// arbitrarily deep documents (e.g. the chase's `d → d? e` chains) cannot
/// overflow the thread stack.
pub fn tree_to_text(tree: &XmlTree) -> String {
    let mut out = String::new();
    // Work items: either "emit this node (as the `index`-th child of its
    // parent's list)" or "close a bracket".
    enum Item {
        Node(NodeId, bool),
        Close,
    }
    let mut stack = vec![Item::Node(tree.root(), true)];
    while let Some(item) = stack.pop() {
        match item {
            Item::Close => out.push(']'),
            Item::Node(node, first) => {
                if !first {
                    out.push(',');
                }
                push_name(&mut out, tree.label(node).as_str());
                let attrs = tree.attrs(node);
                if !attrs.is_empty() {
                    out.push('(');
                    for (i, (name, value)) in attrs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_name(&mut out, name.as_ref());
                        out.push('=');
                        match value {
                            Value::Const(s) => push_quoted(&mut out, s),
                            Value::Null(NullId(id)) => {
                                out.push('⊥');
                                out.push_str(&id.to_string());
                            }
                        }
                    }
                    out.push(')');
                }
                let children = tree.children(node);
                if !children.is_empty() {
                    out.push('[');
                    stack.push(Item::Close);
                    for (i, &c) in children.iter().enumerate().rev() {
                        stack.push(Item::Node(c, i == 0));
                    }
                }
            }
        }
    }
    out
}

/// The grammar layer over the shared [`Cursor`]: tree-text names, values
/// and node headers. Tokenization itself lives in [`crate::lexer`].
struct Parser<'a> {
    cur: Cursor<'a>,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> TreeTextError {
        self.cur.error(message).into()
    }

    /// A name: bare identifier or quoted string (with escapes).
    fn parse_name(&mut self) -> Result<String, TreeTextError> {
        self.cur.skip_ws();
        if self.cur.peek() == Some('"') {
            return Ok(self.cur.quoted_escaped()?);
        }
        Ok(self
            .cur
            .ident(ident_char, "a name (identifier or quoted string)")?
            .to_string())
    }

    fn parse_value(&mut self) -> Result<Value, TreeTextError> {
        self.cur.skip_ws();
        match self.cur.peek() {
            Some('"') => Ok(Value::constant(self.cur.quoted_escaped()?)),
            Some('⊥') | Some('~') => {
                self.cur.bump();
                let digits = self.cur.take_while(|c| c.is_ascii_digit());
                if digits.is_empty() {
                    return Err(self.error("expected digits after the null marker"));
                }
                let id: u64 = digits
                    .parse()
                    .map_err(|_| self.error("null identifier does not fit in u64"))?;
                Ok(Value::Null(NullId(id)))
            }
            _ => Err(self.error("expected a value: \"constant\" or ⊥<id>")),
        }
    }

    /// One node header (name + optional attribute list), attached under
    /// `parent` (or as the root when `parent` is `None`).
    fn parse_node(
        &mut self,
        tree: &mut Option<XmlTree>,
        parent: Option<NodeId>,
    ) -> Result<NodeId, TreeTextError> {
        let name = self.parse_name()?;
        let node = match (tree.as_mut(), parent) {
            (None, _) => {
                *tree = Some(XmlTree::new(ElementType::new(name)));
                tree.as_ref().expect("just set").root()
            }
            (Some(t), Some(p)) => {
                if t.arena_len() >= MAX_DOCUMENT_NODES {
                    return Err(self.error(format!("document exceeds {MAX_DOCUMENT_NODES} nodes")));
                }
                t.add_child(p, ElementType::new(name))
            }
            (Some(_), None) => unreachable!("only the root parses without a parent"),
        };
        if self.cur.eat('(') {
            let t = tree.as_mut().expect("tree exists once a node was made");
            loop {
                let attr = self.parse_name()?;
                self.cur.expect('=')?;
                let value = self.parse_value()?;
                if t.attr(node, &attr.as_str().into()).is_some() {
                    return Err(self.error(format!("duplicate attribute {attr}")));
                }
                t.set_attr(node, attr, value);
                if self.cur.eat(',') {
                    continue;
                }
                self.cur.expect(')')?;
                break;
            }
        }
        Ok(node)
    }
}

/// Parse a tree from its text form. The inverse of [`tree_to_text`]:
/// `parse_tree(&tree_to_text(t))` reconstructs `t` exactly (same labels,
/// attributes, null ids and sibling order). Iterative — nesting depth is
/// bounded only by the input length, never by the thread stack.
pub fn parse_tree(input: &str) -> Result<XmlTree, TreeTextError> {
    if input.len() > MAX_DOCUMENT_BYTES {
        return Err(TreeTextError {
            position: 0,
            message: format!(
                "input of {} bytes exceeds the {MAX_DOCUMENT_BYTES}-byte document cap",
                input.len()
            ),
        });
    }
    let mut p = Parser {
        cur: Cursor::new(input),
    };
    let mut tree: Option<XmlTree> = None;
    // Stack of open `[` scopes: the parent node awaiting further children.
    let mut open: Vec<NodeId> = Vec::new();
    let mut node = p.parse_node(&mut tree, None)?;
    loop {
        if p.cur.eat('[') {
            // The node just parsed opens a child scope; parse its first child.
            if open.len() >= MAX_DOCUMENT_DEPTH {
                return Err(p.error(format!(
                    "document exceeds the nesting-depth cap of {MAX_DOCUMENT_DEPTH}"
                )));
            }
            open.push(node);
            node = p.parse_node(&mut tree, Some(node))?;
            continue;
        }
        // Close as many scopes as the input does, then either continue with
        // a sibling or finish.
        loop {
            if p.cur.eat(',') {
                let Some(&parent) = open.last() else {
                    return Err(p.error("',' outside a child list"));
                };
                node = p.parse_node(&mut tree, Some(parent))?;
                break;
            } else if p.cur.eat(']') {
                // A closed node cannot reopen a child list (`a[b][c]` is not
                // in the grammar), so the scope is simply popped.
                if open.pop().is_none() {
                    return Err(p.error("unmatched ']'"));
                }
                continue;
            } else {
                if !p.cur.at_end() {
                    return Err(p.error("unexpected trailing input"));
                }
                if !open.is_empty() {
                    return Err(p.error("unclosed '['"));
                }
                return Ok(tree.expect("at least the root was parsed"));
            }
        }
    }
}

impl XmlTree {
    /// Serialize to the lossless text form of [`tree_to_text`].
    pub fn to_text(&self) -> String {
        tree_to_text(self)
    }

    /// Parse from the text form ([`parse_tree`]).
    pub fn from_text(input: &str) -> Result<XmlTree, TreeTextError> {
        parse_tree(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;
    use crate::value::NullGen;

    /// Exact structural equality (labels, attrs incl. null ids, order).
    fn assert_round_trip(tree: &XmlTree) {
        let text = tree_to_text(tree);
        let back = parse_tree(&text).unwrap_or_else(|e| panic!("{e} in {text:?}"));
        // Preorder sequence + per-node child count pins the exact shape
        // (iteratively — `ordered_canonical_form` would recurse and cannot
        // handle the deep-tree case below); labels and attrs pin the rest,
        // including exact null ids.
        let (a, b): (Vec<_>, Vec<_>) = (tree.preorder().collect(), back.preorder().collect());
        assert_eq!(a.len(), b.len(), "size mismatch for {text:?}");
        for (&x, &y) in a.iter().zip(&b) {
            assert_eq!(tree.children(x).len(), back.children(y).len());
            assert_eq!(tree.label(x), back.label(y));
            assert_eq!(tree.attrs(x), back.attrs(y));
        }
        // And serialization is a fixed point.
        assert_eq!(text, tree_to_text(&back));
    }

    #[test]
    fn round_trips_the_running_example() {
        let tree = TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "Combinatorial Optimization")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
                    .child("author", |a| a.attr("@name", "Steiglitz"))
            })
            .child("book", |b| b.attr("@title", "Computational Complexity"))
            .build();
        assert_round_trip(&tree);
        let text = tree_to_text(&tree);
        assert!(text.starts_with("db[book(@title=\"Combinatorial Optimization\")"));
    }

    #[test]
    fn round_trips_nulls_and_hostile_strings() {
        let mut gen = NullGen::starting_at(41);
        let mut t = XmlTree::new("r");
        let a = t.add_child(t.root(), "a");
        t.set_attr(a, "@x", gen.fresh_value());
        t.set_attr(a, "@y", "quote \" backslash \\ comma , bracket ] ⊥9");
        t.set_attr(a, "@z", "");
        let weird = t.add_child(t.root(), "label with spaces");
        t.set_attr(weird, "odd attr (name)", "v");
        assert_round_trip(&t);
        let text = tree_to_text(&t);
        assert!(text.contains("⊥41"));
        assert!(text.contains("\"label with spaces\""));
    }

    #[test]
    fn deep_trees_do_not_recurse() {
        // Deeper than any default thread stack could handle recursively at
        // ~100 bytes/frame × 200k frames; both directions must be iterative.
        let mut t = XmlTree::new("d");
        let mut n = t.root();
        for _ in 0..200_000 {
            n = t.add_child(n, "d");
        }
        assert_round_trip(&t);
    }

    #[test]
    fn whitespace_and_ascii_null_marker_are_accepted() {
        let t = parse_tree(" r ( @a = \"v\" , @b = ~7 ) [ x , y [ z ] ] ").unwrap();
        assert_eq!(t.size(), 4);
        let r = t.root();
        assert_eq!(t.attr(r, &"@b".into()), Some(&Value::Null(NullId(7))));
        assert_eq!(t.label(t.children(r)[1]).as_str(), "y");
    }

    #[test]
    fn malformed_inputs_are_structured_errors() {
        for bad in [
            "",
            "r[",
            "r]",
            "r[a,]",
            "r[,a]",
            "r(@a)",
            "r(@a=)",
            "r(@a=\"x\"",
            "r(@a=⊥)",
            "r(@a=\"x\") trailing",
            "r[a] trailing",
            "\"unterminated",
            "r(@a=\"bad escape \\n\")",
            "r(@a=\"x\", @a=\"y\")",
            "r()",
            "r[]",
            "r(@a=⊥99999999999999999999999999)",
        ] {
            let err = parse_tree(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.to_string().contains("byte"));
        }
    }

    #[test]
    fn randomized_round_trips() {
        // A deterministic LCG drives random tree construction: shapes,
        // labels (some hostile), attrs (consts, empties, nulls).
        let mut state = 0x9E37_79B9u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..200 {
            let labels = ["a", "b", "weird \"l\"", "@x-1._", "c,d[e]", "⊥", ""];
            let mut t = XmlTree::new(labels[next(7) as usize]);
            let mut nodes = vec![t.root()];
            for _ in 0..next(40) {
                let parent = nodes[next(nodes.len() as u64) as usize];
                let n = t.add_child(parent, labels[next(7) as usize]);
                for _ in 0..next(3) {
                    let name = ["@a", "@b", "odd name", ""][next(4) as usize];
                    if next(3) == 0 {
                        t.set_attr(n, name, Value::Null(NullId(next(1000))));
                    } else {
                        t.set_attr(n, name, format!("v{}\\\"", next(50)));
                    }
                }
                nodes.push(n);
            }
            assert_round_trip(&t);
        }
    }
}
