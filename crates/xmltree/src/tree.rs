//! Arena-based XML trees.
//!
//! An [`XmlTree`] is the paper's XML document: a finite ordered unranked tree
//! with element-type labels and attribute values (Section 2). Nodes live in a
//! flat arena addressed by [`NodeId`]; algorithms never hold references into
//! the tree across mutations, which keeps the chase (which merges and adds
//! nodes) simple and borrow-checker friendly.
//!
//! The *unordered* trees of Section 5.2 are represented by the same type:
//! the child order is simply ignored by the unordered-conformance and
//! unordered-equality operations.

use crate::name::{AttrName, ElementType};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node within its [`XmlTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a node id from an arena index. The index must come from the
    /// same tree — typically offset arithmetic over the base id returned by
    /// [`XmlTree::append_forest`], or a loop over `0..arena_len()` (indexing
    /// with a foreign or out-of-range id panics on first use).
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node arena exceeds u32::MAX slots"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: ElementType,
    attrs: BTreeMap<AttrName, Value>,
    children: Vec<NodeId>,
    parent: Option<NodeId>,
}

/// An XML document: a rooted, ordered, unranked, labelled tree with
/// attribute values.
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<NodeData>,
    root: NodeId,
}

impl XmlTree {
    /// Create a tree consisting of a single root node labelled `root_label`.
    pub fn new(root_label: impl Into<ElementType>) -> Self {
        let root = NodeData {
            label: root_label.into(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
            parent: None,
        };
        XmlTree {
            nodes: vec![root],
            root: NodeId(0),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The element type of `node`.
    pub fn label(&self, node: NodeId) -> &ElementType {
        &self.nodes[node.index()].label
    }

    /// The attributes of `node`.
    pub fn attrs(&self, node: NodeId) -> &BTreeMap<AttrName, Value> {
        &self.nodes[node.index()].attrs
    }

    /// The value of attribute `name` at `node`, if defined.
    pub fn attr(&self, node: NodeId, name: &AttrName) -> Option<&Value> {
        self.nodes[node.index()].attrs.get(name)
    }

    /// Mutable access to `node`'s whole attribute map — for bulk builders
    /// (the binary decoder) that fill many attributes of one node at a time
    /// and want to pay the node lookup once.
    pub fn attrs_mut(&mut self, node: NodeId) -> &mut BTreeMap<AttrName, Value> {
        &mut self.nodes[node.index()].attrs
    }

    /// Set (or overwrite) an attribute value at `node`, returning the value
    /// it replaced (if any) — which doubles as a single-lookup existence
    /// check for callers that must reject duplicates.
    pub fn set_attr(
        &mut self,
        node: NodeId,
        name: impl Into<AttrName>,
        value: impl Into<Value>,
    ) -> Option<Value> {
        self.nodes[node.index()]
            .attrs
            .insert(name.into(), value.into())
    }

    /// Remove an attribute from `node`, returning its previous value.
    pub fn remove_attr(&mut self, node: NodeId, name: &AttrName) -> Option<Value> {
        self.nodes[node.index()].attrs.remove(name)
    }

    /// The children of `node`, in sibling order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// The parent of `node` (`None` for the root or detached nodes).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Append a fresh child labelled `label` to `parent` and return it.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<ElementType>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Insert a fresh child labelled `label` at position `at` of `parent`'s
    /// child list (shifting later siblings right) and return it.
    /// `insert_child(p, children(p).len(), l)` behaves like
    /// [`XmlTree::add_child`]. This is the structural primitive behind the
    /// store's node-local edit log, where point edits must land at a stated
    /// sibling position rather than at the end.
    ///
    /// # Panics
    /// Panics if `at` exceeds the current number of children.
    pub fn insert_child(
        &mut self,
        parent: NodeId,
        at: usize,
        label: impl Into<ElementType>,
    ) -> NodeId {
        let n = self.nodes[parent.index()].children.len();
        assert!(at <= n, "insert_child: position {at} outside 0..={n}");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.insert(at, id);
        id
    }

    /// Create a fresh node that is not attached anywhere yet.
    pub fn new_detached(&mut self, label: impl Into<ElementType>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: label.into(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
            parent: None,
        });
        id
    }

    /// Attach a detached node as the last child of `parent`.
    ///
    /// # Panics
    /// Panics if `child` already has a parent (which would create a DAG).
    pub fn attach_child(&mut self, parent: NodeId, child: NodeId) {
        assert!(
            self.nodes[child.index()].parent.is_none(),
            "attach_child: node {child} already has a parent"
        );
        assert_ne!(
            parent, child,
            "attach_child: cannot attach a node to itself"
        );
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Detach `child` from `parent` (the subtree rooted at `child` becomes
    /// unreachable unless re-attached).
    pub fn detach_child(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[parent.index()].children.retain(|&c| c != child);
        if self.nodes[child.index()].parent == Some(parent) {
            self.nodes[child.index()].parent = None;
        }
    }

    /// Move all children of `from` to the end of `to`'s child list,
    /// preserving their order. Used when the chase merges sibling nodes.
    pub fn reparent_children(&mut self, from: NodeId, to: NodeId) {
        assert_ne!(from, to, "reparent_children: from == to");
        let moved = std::mem::take(&mut self.nodes[from.index()].children);
        for &c in &moved {
            self.nodes[c.index()].parent = Some(to);
        }
        self.nodes[to.index()].children.extend(moved);
    }

    /// Reorder the children of `node` according to `order`, which must be a
    /// permutation of the current child list.
    ///
    /// # Panics
    /// Panics (in debug builds) if `order` is not a permutation of the
    /// current children.
    pub fn set_child_order(&mut self, node: NodeId, order: Vec<NodeId>) {
        debug_assert_eq!(
            {
                let mut a = self.nodes[node.index()].children.clone();
                a.sort();
                a
            },
            {
                let mut b = order.clone();
                b.sort();
                b
            },
            "set_child_order: not a permutation of the existing children"
        );
        self.nodes[node.index()].children = order;
    }

    /// Bulk-append a preorder-encoded forest below `parent`.
    ///
    /// `nodes[i]` is `(parent_slot, label)`: slot `i` is attached under
    /// `parent` itself when `parent_slot == u32::MAX`, and under the node
    /// created for slot `parent_slot` otherwise (which must be `< i`, i.e.
    /// the encoding is preorder). All arena slots are reserved in one go and
    /// child links are appended in slot order, so the document order of the
    /// stamped nodes is the slot order. Returns the id of slot 0; slot `i`
    /// is `NodeId::from_index(base.index() + i)`.
    ///
    /// An empty `nodes` slice is a no-op and returns `None` — there is no
    /// slot 0 to name. (Callers with an empty template match, and the binary
    /// codec decoding a single-root document, hit this legitimately; it used
    /// to be an `assert!`.)
    ///
    /// This is the allocation-shape the template-stamped target
    /// instantiation of the exchange chase uses: one `Vec` growth for the
    /// whole fragment instead of one recursion frame + child push per node.
    ///
    /// # Panics
    /// Panics if a `parent_slot` is neither `u32::MAX` nor a smaller slot
    /// index.
    pub fn append_forest(
        &mut self,
        parent: NodeId,
        nodes: &[(u32, ElementType)],
    ) -> Option<NodeId> {
        if nodes.is_empty() {
            return None;
        }
        let base = self.nodes.len();
        self.nodes.reserve(nodes.len());
        // Pre-count fan-out so the child-list pushes below never reallocate
        // (bulk decode feeds whole documents through here).
        let mut fanout = vec![0u32; nodes.len()];
        let mut under_parent = 0usize;
        for (parent_slot, _) in nodes {
            if *parent_slot == u32::MAX {
                under_parent += 1;
            } else {
                fanout[*parent_slot as usize] += 1;
            }
        }
        self.nodes[parent.index()].children.reserve(under_parent);
        for (i, (parent_slot, label)) in nodes.iter().enumerate() {
            let id = NodeId::from_index(base + i);
            let p = if *parent_slot == u32::MAX {
                parent
            } else {
                assert!(
                    (*parent_slot as usize) < i,
                    "append_forest: slot {i} references later slot {parent_slot}"
                );
                NodeId::from_index(base + *parent_slot as usize)
            };
            self.nodes.push(NodeData {
                label: label.clone(),
                attrs: BTreeMap::new(),
                children: Vec::with_capacity(fanout[i] as usize),
                parent: Some(p),
            });
            self.nodes[p.index()].children.push(id);
        }
        Some(NodeId::from_index(base))
    }

    /// Copy the subtree of `other` rooted at `other_node` into this tree as a
    /// new child of `parent`. Returns the id of the copied root.
    pub fn graft(&mut self, parent: NodeId, other: &XmlTree, other_node: NodeId) -> NodeId {
        let new_id = self.add_child(parent, other.label(other_node).clone());
        let attrs = other.attrs(other_node).clone();
        self.nodes[new_id.index()].attrs = attrs;
        for &c in other.children(other_node) {
            self.graft(new_id, other, c);
        }
        new_id
    }

    /// All nodes reachable from the root, in preorder (document order).
    ///
    /// Allocates the full node list; iteration-only callers should prefer
    /// [`XmlTree::preorder`], which walks lazily with a depth-bounded stack.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.descendants_or_self(self.root)
    }

    /// Lazily iterate all nodes reachable from the root, in preorder
    /// (document order). Unlike [`XmlTree::nodes`] this never materialises
    /// the node list: the iterator keeps a cursor stack whose depth is
    /// bounded by the tree depth, so full traversals are allocation-light
    /// and partial traversals (`any`, `take_while`, early `return`) stop
    /// paying as soon as they stop pulling.
    pub fn preorder(&self) -> Preorder<'_> {
        self.preorder_of(self.root)
    }

    /// As [`XmlTree::preorder`], starting at `node` (the subtree, including
    /// `node` itself).
    pub fn preorder_of(&self, node: NodeId) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![(node, 0)],
            started: false,
        }
    }

    /// Number of arena slots: every `NodeId::index()` of this tree (including
    /// detached nodes) is smaller than this. Used to size per-node side
    /// tables without hashing.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes of the subtree rooted at `node`, in preorder, including
    /// `node` itself.
    pub fn descendants_or_self(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.push(n);
            // push children in reverse so they pop in document order
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The proper descendants of `node`, in preorder.
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        let mut v = self.descendants_or_self(node);
        v.remove(0);
        v
    }

    /// Is `descendant` a (non-strict) descendant of `ancestor`?
    pub fn is_descendant_or_self(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        let mut current = Some(descendant);
        while let Some(n) = current {
            if n == ancestor {
                return true;
            }
            current = self.parent(n);
        }
        false
    }

    /// Number of nodes reachable from the root.
    pub fn size(&self) -> usize {
        self.preorder().count()
    }

    /// Approximate heap footprint of the tree in bytes — the arena capacity
    /// plus per-node child vectors and attribute entries (including detached
    /// slots, which still occupy memory). An *estimate* for observability
    /// gauges, not an accounting guarantee: `Arc<str>` names are charged
    /// their string length at every holder (shared allocations are counted
    /// once per reference), and `BTreeMap` node overhead is folded into a
    /// flat per-entry constant.
    pub fn approx_heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<NodeData>();
        for n in &self.nodes {
            bytes += n.children.capacity() * std::mem::size_of::<NodeId>();
            bytes += n.label.as_str().len();
            for (name, value) in &n.attrs {
                // ~3 words of B-tree bookkeeping per entry plus the entry
                // payload itself, then the string heap behind it.
                bytes += 24 + std::mem::size_of::<(AttrName, Value)>();
                bytes += name.as_str().len();
                if let Value::Const(s) = value {
                    bytes += s.len();
                }
            }
        }
        bytes
    }

    /// Length of the longest root-to-leaf path (a single node has depth 1).
    pub fn depth(&self) -> usize {
        fn go(t: &XmlTree, n: NodeId) -> usize {
            1 + t.children(n).iter().map(|&c| go(t, c)).max().unwrap_or(0)
        }
        go(self, self.root)
    }

    /// All constant attribute values occurring in the tree (the active domain
    /// of constants).
    pub fn constants(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .preorder()
            .flat_map(|n| self.attrs(n).values())
            .filter_map(|v| v.as_const().map(|s| s.to_string()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Does any reachable attribute hold a null?
    pub fn has_nulls(&self) -> bool {
        self.preorder()
            .any(|n| self.attrs(n).values().any(Value::is_null))
    }

    /// A canonical textual form of the tree *ignoring sibling order* and
    /// *anonymising nulls* (every null prints as `⊥`). Two trees with equal
    /// unordered canonical forms are equal up to sibling order and renaming
    /// of nulls-as-a-set (not necessarily up to a null bijection; sufficient
    /// for the structural checks in tests and examples).
    pub fn unordered_canonical_form(&self) -> String {
        self.canonical_of(self.root, false)
    }

    /// A canonical textual form of the tree *respecting sibling order*, with
    /// nulls anonymised.
    pub fn ordered_canonical_form(&self) -> String {
        self.canonical_of(self.root, true)
    }

    fn canonical_of(&self, node: NodeId, ordered: bool) -> String {
        let mut attr_parts: Vec<String> = self
            .attrs(node)
            .iter()
            .map(|(k, v)| match v {
                Value::Const(s) => format!("{k}={s:?}"),
                Value::Null(_) => format!("{k}=⊥"),
            })
            .collect();
        attr_parts.sort();
        let mut child_parts: Vec<String> = self
            .children(node)
            .iter()
            .map(|&c| self.canonical_of(c, ordered))
            .collect();
        if !ordered {
            child_parts.sort();
        }
        format!(
            "{}({})[{}]",
            self.label(node),
            attr_parts.join(","),
            child_parts.join(",")
        )
    }

    /// Structural equality up to sibling order and null anonymisation.
    pub fn unordered_eq(&self, other: &XmlTree) -> bool {
        self.unordered_canonical_form() == other.unordered_canonical_form()
    }

    /// Check internal parent/child consistency; used by tests and debug
    /// assertions after surgical operations.
    pub fn validate(&self) -> Result<(), String> {
        for n in self.preorder() {
            for &c in self.children(n) {
                if self.parent(c) != Some(n) {
                    return Err(format!("child {c} of {n} has parent {:?}", self.parent(c)));
                }
            }
        }
        if self.parent(self.root).is_some() {
            return Err("root has a parent".to_string());
        }
        // No node may appear as a child of two different parents.
        let mut seen = std::collections::BTreeSet::new();
        for n in self.preorder() {
            if !seen.insert(n) {
                return Err(format!("node {n} reachable twice (sharing)"));
            }
        }
        Ok(())
    }
}

/// Lazy preorder (document-order) traversal of an [`XmlTree`] subtree; see
/// [`XmlTree::preorder`]. The stack holds one `(ancestor, next-child)`
/// cursor per level of the current path, so memory is bounded by the tree
/// depth, not its size.
#[derive(Debug, Clone)]
pub struct Preorder<'t> {
    tree: &'t XmlTree,
    stack: Vec<(NodeId, usize)>,
    started: bool,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if !self.started {
            self.started = true;
            return self.stack.first().map(|&(n, _)| n);
        }
        loop {
            let (node, cursor) = self.stack.last_mut()?;
            let children = &self.tree.nodes[node.index()].children;
            if let Some(&child) = children.get(*cursor) {
                *cursor += 1;
                self.stack.push((child, 0));
                return Some(child);
            }
            self.stack.pop();
        }
    }
}

impl fmt::Display for XmlTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &XmlTree, n: NodeId, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(indent);
            let attrs: Vec<String> = t.attrs(n).iter().map(|(k, v)| format!("{k}={v}")).collect();
            if attrs.is_empty() {
                writeln!(f, "{pad}{}", t.label(n))?;
            } else {
                writeln!(f, "{pad}{} [{}]", t.label(n), attrs.join(", "))?;
            }
            for &c in t.children(n) {
                go(t, c, indent + 1, f)?;
            }
            Ok(())
        }
        go(self, self.root, 0, f)
    }
}

/// A fluent builder for XML trees.
///
/// ```
/// use xdx_xmltree::TreeBuilder;
///
/// let tree = TreeBuilder::new("db")
///     .child("book", |b| {
///         b.attr("@title", "Computational Complexity")
///             .child("author", |a| a.attr("@name", "Papadimitriou").attr("@aff", "UCB"))
///     })
///     .build();
/// assert_eq!(tree.size(), 3);
/// ```
#[derive(Debug)]
pub struct TreeBuilder {
    tree: XmlTree,
    current: NodeId,
}

impl TreeBuilder {
    /// Start a tree with the given root label.
    pub fn new(root_label: impl Into<ElementType>) -> Self {
        let tree = XmlTree::new(root_label);
        let root = tree.root();
        TreeBuilder {
            tree,
            current: root,
        }
    }

    /// Set an attribute on the current node.
    pub fn attr(mut self, name: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        self.tree.set_attr(self.current, name, value);
        self
    }

    /// Add a child to the current node and describe it with `f`.
    pub fn child(
        mut self,
        label: impl Into<ElementType>,
        f: impl FnOnce(TreeBuilder) -> TreeBuilder,
    ) -> Self {
        let child = self.tree.add_child(self.current, label);
        let sub = TreeBuilder {
            tree: self.tree,
            current: child,
        };
        let sub = f(sub);
        TreeBuilder {
            tree: sub.tree,
            current: self.current,
        }
    }

    /// Add a leaf child with no attributes or children.
    pub fn leaf(mut self, label: impl Into<ElementType>) -> Self {
        self.tree.add_child(self.current, label);
        self
    }

    /// Finish building and return the tree.
    pub fn build(self) -> XmlTree {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NullGen, NullId};

    fn figure1_tree() -> XmlTree {
        // The source document of Figure 1(b).
        TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "Combinatorial Optimization")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
                    .child("author", |a| {
                        a.attr("@name", "Steiglitz").attr("@aff", "Princeton")
                    })
            })
            .child("book", |b| {
                b.attr("@title", "Computational Complexity")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
            })
            .build()
    }

    #[test]
    fn builder_and_basic_accessors() {
        let t = figure1_tree();
        assert_eq!(t.size(), 6);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.label(t.root()).as_str(), "db");
        let books = t.children(t.root());
        assert_eq!(books.len(), 2);
        assert_eq!(
            t.attr(books[0], &"@title".into()).unwrap().as_const(),
            Some("Combinatorial Optimization")
        );
        assert_eq!(t.children(books[0]).len(), 2);
        assert_eq!(t.parent(books[0]), Some(t.root()));
        assert_eq!(t.parent(t.root()), None);
        t.validate().unwrap();
    }

    #[test]
    fn constants_and_nulls() {
        let mut t = figure1_tree();
        assert!(!t.has_nulls());
        let consts = t.constants();
        assert!(consts.contains(&"Papadimitriou".to_string()));
        assert!(consts.contains(&"Princeton".to_string()));
        assert_eq!(consts.len(), 6);

        let mut gen = NullGen::new();
        let book = t.children(t.root())[0];
        t.set_attr(book, "@year", gen.fresh_value());
        assert!(t.has_nulls());
        // nulls are not constants
        assert_eq!(t.constants().len(), 6);
    }

    #[test]
    fn descendants_and_preorder() {
        let t = figure1_tree();
        let all = t.nodes();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], t.root());
        // first book's authors come before the second book in document order
        let labels: Vec<&str> = all.iter().map(|&n| t.label(n).as_str()).collect();
        assert_eq!(
            labels,
            vec!["db", "book", "author", "author", "book", "author"]
        );
        let book1 = t.children(t.root())[0];
        assert_eq!(t.descendants(book1).len(), 2);
        assert!(t.is_descendant_or_self(t.root(), book1));
        assert!(t.is_descendant_or_self(book1, t.descendants(book1)[0]));
        assert!(!t.is_descendant_or_self(book1, t.root()));
    }

    #[test]
    fn surgery_attach_detach_reparent() {
        let mut t = XmlTree::new("r");
        let a = t.add_child(t.root(), "A");
        let b = t.add_child(t.root(), "B");
        let a1 = t.add_child(a, "x");
        let _a2 = t.add_child(a, "y");
        assert_eq!(t.size(), 5);

        // detach A: its subtree becomes unreachable
        t.detach_child(t.root(), a);
        assert_eq!(t.size(), 2);
        t.validate().unwrap();

        // re-attach it under B
        t.attach_child(b, a);
        assert_eq!(t.size(), 5);
        assert_eq!(t.parent(a), Some(b));
        t.validate().unwrap();

        // merge: move A's children to B, then drop A
        t.reparent_children(a, b);
        t.detach_child(b, a);
        assert_eq!(t.parent(a1), Some(b));
        assert_eq!(t.children(b).len(), 2);
        assert_eq!(t.size(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn insert_child_lands_at_the_stated_position() {
        let mut t = XmlTree::new("r");
        t.add_child(t.root(), "a");
        t.add_child(t.root(), "c");
        let b = t.insert_child(t.root(), 1, "b");
        assert_eq!(t.parent(b), Some(t.root()));
        let labels: Vec<&str> = t
            .children(t.root())
            .iter()
            .map(|&n| t.label(n).as_str())
            .collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        // At the end it behaves like add_child; on a leaf, position 0 works.
        let d = t.insert_child(t.root(), 3, "d");
        assert_eq!(t.children(t.root())[3], d);
        let e = t.insert_child(b, 0, "e");
        assert_eq!(t.children(b), &[e]);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "outside 0..=")]
    fn insert_child_past_the_end_panics() {
        let mut t = XmlTree::new("r");
        t.insert_child(t.root(), 1, "a");
    }

    #[test]
    fn set_child_order_permutes() {
        let mut t = XmlTree::new("r");
        let a = t.add_child(t.root(), "a");
        let b = t.add_child(t.root(), "b");
        let c = t.add_child(t.root(), "c");
        t.set_child_order(t.root(), vec![c, a, b]);
        let labels: Vec<&str> = t
            .children(t.root())
            .iter()
            .map(|&n| t.label(n).as_str())
            .collect();
        assert_eq!(labels, vec!["c", "a", "b"]);
        t.validate().unwrap();
    }

    #[test]
    fn graft_copies_subtrees_between_trees() {
        let src = figure1_tree();
        let mut dst = XmlTree::new("bib");
        let book = src.children(src.root())[1];
        let copied = dst.graft(dst.root(), &src, book);
        assert_eq!(dst.label(copied).as_str(), "book");
        assert_eq!(dst.size(), 3);
        assert_eq!(
            dst.attr(copied, &"@title".into()).unwrap().as_const(),
            Some("Computational Complexity")
        );
        dst.validate().unwrap();
    }

    #[test]
    fn unordered_equality_ignores_sibling_order_and_null_names() {
        let mut t1 = XmlTree::new("r");
        let a = t1.add_child(t1.root(), "a");
        t1.set_attr(a, "@x", Value::Null(NullId(0)));
        t1.add_child(t1.root(), "b");

        let mut t2 = XmlTree::new("r");
        t2.add_child(t2.root(), "b");
        let a2 = t2.add_child(t2.root(), "a");
        t2.set_attr(a2, "@x", Value::Null(NullId(7)));

        assert!(t1.unordered_eq(&t2));
        assert_ne!(t1.ordered_canonical_form(), t2.ordered_canonical_form());

        // different attribute values break equality
        let mut t3 = t2.clone();
        t3.set_attr(a2, "@x", "1994");
        assert!(!t1.unordered_eq(&t3));
    }

    #[test]
    fn display_is_indented() {
        let t = figure1_tree();
        let s = format!("{t}");
        assert!(s.starts_with("db\n"));
        assert!(s.contains("  book [@title=Combinatorial Optimization]"));
        assert!(s.contains("    author [@aff=UCB, @name=Papadimitriou]"));
    }

    #[test]
    fn preorder_iterator_matches_nodes() {
        let t = figure1_tree();
        assert_eq!(t.preorder().collect::<Vec<_>>(), t.nodes());
        let book1 = t.children(t.root())[0];
        assert_eq!(
            t.preorder_of(book1).collect::<Vec<_>>(),
            t.descendants_or_self(book1)
        );
        // Lazy: pulling one element only visits the start node.
        assert_eq!(t.preorder().next(), Some(t.root()));
        // Surgery mid-way does not confuse a *fresh* traversal.
        let mut t2 = t.clone();
        t2.detach_child(t2.root(), book1);
        assert_eq!(t2.preorder().collect::<Vec<_>>(), t2.nodes());
        assert_eq!(t2.size(), 3);
    }

    #[test]
    fn append_forest_stamps_in_document_order() {
        // Stamp sec[title, par] sec under the root in one call.
        let mut t = XmlTree::new("doc");
        let sec = ElementType::new("sec");
        let title = ElementType::new("title");
        let par = ElementType::new("par");
        let base = t
            .append_forest(
                t.root(),
                &[
                    (u32::MAX, sec.clone()),
                    (0, title.clone()),
                    (0, par.clone()),
                    (u32::MAX, sec.clone()),
                ],
            )
            .unwrap();
        assert_eq!(base.index(), 1);
        t.validate().unwrap();
        assert_eq!(t.size(), 5);
        let labels: Vec<&str> = t.preorder().map(|n| t.label(n).as_str()).collect();
        assert_eq!(labels, vec!["doc", "sec", "title", "par", "sec"]);
        let first_sec = t.children(t.root())[0];
        assert_eq!(first_sec, base);
        assert_eq!(t.children(first_sec).len(), 2);
        assert_eq!(t.parent(NodeId::from_index(base.index() + 1)), Some(base));
        // A second stamp appends after the first.
        let base2 = t
            .append_forest(t.root(), &[(u32::MAX, sec.clone())])
            .unwrap();
        assert_eq!(t.children(t.root()).len(), 3);
        assert_eq!(t.children(t.root())[2], base2);
        t.validate().unwrap();
    }

    #[test]
    fn append_forest_of_nothing_is_a_no_op() {
        let mut t = XmlTree::new("doc");
        assert_eq!(t.append_forest(t.root(), &[]), None);
        assert_eq!(t.size(), 1);
        assert_eq!(t.arena_len(), 1);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "references later slot")]
    fn append_forest_rejects_forward_parent_slots() {
        let mut t = XmlTree::new("doc");
        t.append_forest(
            t.root(),
            &[
                (1, ElementType::new("a")),
                (u32::MAX, ElementType::new("b")),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "already has a parent")]
    fn attaching_an_attached_node_panics() {
        let mut t = XmlTree::new("r");
        let a = t.add_child(t.root(), "a");
        let b = t.add_child(t.root(), "b");
        t.attach_child(b, a);
    }
}
