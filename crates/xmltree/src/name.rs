//! Names: element types and attribute names.
//!
//! Both are thin wrappers around `Arc<str>` so that cloning a name (which the
//! pattern-matching and chase code does constantly) is a reference-count bump
//! rather than a heap copy, and so that names can be used directly as regular
//! expression symbols in [`xdx_relang`].

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

macro_rules! name_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialOrd, Ord, Hash)]
        // The manual PartialEq only adds a pointer-equality fast path; it
        // still equals content equality, so the derived Hash is consistent.
        #[allow(clippy::derived_hash_with_manual_eq)]
        pub struct $name(Arc<str>);

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                // Names are cloned by reference-count bump all over the chase
                // and pattern code, so equal names usually share an
                // allocation: check the pointer before the bytes.
                Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
            }
        }

        impl Eq for $name {}

        impl $name {
            /// Create a new name from anything string-like.
            pub fn new(s: impl AsRef<str>) -> Self {
                $name(Arc::from(s.as_ref()))
            }

            /// View the name as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:?}", &*self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(s)
            }
        }

        impl From<&String> for $name {
            fn from(s: &String) -> Self {
                $name::new(s)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                &*self.0 == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                &*self.0 == *other
            }
        }
    };
}

name_type! {
    /// The name of an element type (`El` in the paper), e.g. `book`, `writer`.
    ElementType
}

name_type! {
    /// The name of an attribute (`Att` in the paper), e.g. `@title`, `@name`.
    ///
    /// The leading `@` is purely conventional; this type stores whatever
    /// string it is given.
    AttrName
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn construction_and_display() {
        let e = ElementType::new("book");
        assert_eq!(e.as_str(), "book");
        assert_eq!(format!("{e}"), "book");
        assert_eq!(format!("{e:?}"), "\"book\"");
        let a: AttrName = "@title".into();
        assert_eq!(a, "@title");
    }

    #[test]
    fn ordering_and_sets() {
        let set: BTreeSet<ElementType> = ["b", "a", "c", "a"].iter().map(|s| (*s).into()).collect();
        let names: Vec<&str> = set.iter().map(|e| e.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn cheap_clone_points_to_same_allocation() {
        let e = ElementType::new("writer");
        let f = e.clone();
        assert_eq!(e, f);
        // Same Arc allocation (pointer equality of the underlying str).
        assert!(std::ptr::eq(e.as_str(), f.as_str()));
    }

    #[test]
    fn usable_as_regex_symbols() {
        use xdx_relang::Regex;
        let r: Regex<ElementType> = Regex::star(Regex::Symbol(ElementType::new("book")));
        assert_eq!(r.alphabet().len(), 1);
    }
}
