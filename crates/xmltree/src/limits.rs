//! Shared document-size guard constants.
//!
//! Every layer that admits documents from untrusted bytes — the text codec
//! ([`crate::text`]), the binary codec ([`crate::binary`]), the server's
//! wire protocol, and the `xdx-store` snapshot/WAL loader — used to be one
//! copy-paste away from disagreeing on what "too big" means. The caps live
//! here once; the codecs enforce the hard limits themselves, and the
//! frame-level layers (wire, store) size their defaults from
//! [`DEFAULT_FRAME_BYTES`] so a document accepted by one layer is accepted
//! by all of them.
//!
//! The hard caps are deliberately generous — they are memory-safety bombs
//! against hostile or corrupt inputs, not serving policy. Serving policy
//! (per-request frame caps, per-batch document counts) stays configurable
//! at the server and is bounded above by these.

/// Hard upper bound on the byte length of a single encoded document, in
/// either codec. Both decoders reject longer inputs before doing any work.
/// Matches the reference client's reassembled-response cap: a canonical
/// solution can legitimately out-grow the *request* frame cap, so this is
/// far above [`DEFAULT_FRAME_BYTES`].
pub const MAX_DOCUMENT_BYTES: usize = 256 * 1024 * 1024;

/// Hard upper bound on the number of nodes a decoded document may have.
/// Both decoders count nodes as they materialise them; the bound keeps a
/// corrupt count field (or a pathological but well-formed input) from
/// growing an arena past what the rest of the pipeline (per-node side
/// tables indexed by `NodeId`) is sized for.
pub const MAX_DOCUMENT_NODES: usize = 1 << 27;

/// Hard upper bound on document nesting depth. Both codecs are iterative,
/// so this does not protect the decoding thread's stack — it bounds the
/// heap-allocated cursor stacks and keeps downstream per-depth work
/// (conformance, chase) within reason.
pub const MAX_DOCUMENT_DEPTH: usize = 1 << 22;

/// Default per-frame byte budget for layers that ship documents inside
/// length-prefixed frames: the server's request frame cap
/// (`ServerConfig::max_frame_bytes`) and the store's per-record WAL /
/// snapshot-frame sanity cap both default to this.
pub const DEFAULT_FRAME_BYTES: usize = 8 * 1024 * 1024;
