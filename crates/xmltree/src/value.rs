//! Attribute values: constants and nulls.
//!
//! The paper partitions the attribute domain `Str` into two countably
//! infinite sets: `Const` (values that may occur in source trees) and `Var`
//! (nulls, invented when populating target trees — the `⊥₁, ⊥₂` of Figure 2).
//! Certain answers only ever contain constants.

use std::fmt;
use std::sync::Arc;

/// Identifier of a null (an element of `Var`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// An attribute value: either a constant string or a null.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A constant from `Const` (the only values allowed in source documents
    /// and in certain answers).
    Const(Arc<str>),
    /// A null from `Var`, used to populate target documents when the source
    /// provides no value (e.g. the unknown publication years of Figure 2).
    Null(NullId),
}

impl Value {
    /// Build a constant value.
    pub fn constant(s: impl AsRef<str>) -> Self {
        Value::Const(Arc::from(s.as_ref()))
    }

    /// Build a null value.
    pub fn null(id: NullId) -> Self {
        Value::Null(id)
    }

    /// Is this a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this a null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The constant string, if this is a constant.
    pub fn as_const(&self) -> Option<&str> {
        match self {
            Value::Const(s) => Some(s),
            Value::Null(_) => None,
        }
    }

    /// The null identifier, if this is a null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Const(_) => None,
            Value::Null(id) => Some(*id),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(id) => write!(f, "{id}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::constant(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::constant(s)
    }
}

impl From<NullId> for Value {
    fn from(id: NullId) -> Self {
        Value::Null(id)
    }
}

/// A generator of fresh nulls.
///
/// Each call to [`NullGen::fresh`] returns a null never handed out before by
/// this generator. Algorithms that populate target documents (the canonical
/// pre-solution, `ChangeAtt`) thread a `&mut NullGen` through.
#[derive(Debug, Default, Clone)]
pub struct NullGen {
    next: u64,
}

impl NullGen {
    /// A generator starting at `⊥0`.
    pub fn new() -> Self {
        NullGen::default()
    }

    /// A generator whose first null will be `⊥start`.
    pub fn starting_at(start: u64) -> Self {
        NullGen { next: start }
    }

    /// Hand out a fresh null.
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next += 1;
        id
    }

    /// Hand out a fresh null already wrapped as a [`Value`].
    pub fn fresh_value(&mut self) -> Value {
        Value::Null(self.fresh())
    }

    /// Number of nulls handed out so far.
    pub fn count(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_vs_null() {
        let c = Value::constant("Papadimitriou");
        let n = Value::Null(NullId(1));
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(c.as_const(), Some("Papadimitriou"));
        assert_eq!(n.as_null(), Some(NullId(1)));
        assert_eq!(c.as_null(), None);
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Value::constant("UCB")), "UCB");
        assert_eq!(format!("{}", Value::Null(NullId(2))), "⊥2");
    }

    #[test]
    fn null_gen_is_monotone_and_fresh() {
        let mut g = NullGen::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh_value();
        assert_ne!(a, b);
        assert!(c.is_null());
        assert_eq!(g.count(), 3);
        let mut g2 = NullGen::starting_at(100);
        assert_eq!(g2.fresh(), NullId(100));
    }

    #[test]
    fn equality_of_constants_is_by_content() {
        assert_eq!(Value::constant("x"), Value::from("x"));
        assert_ne!(Value::constant("x"), Value::constant("y"));
        assert_ne!(Value::constant("x"), Value::Null(NullId(0)));
    }
}
