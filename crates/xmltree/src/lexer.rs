//! The shared hand-rolled lexer under this workspace's text grammars.
//!
//! Three grammars ship documents and formulae as text — the tree text of
//! [`crate::text`], the pattern/query syntax of `xdx-patterns`, and the
//! setting-upload syntax of `xdx-core` — and before this module each carried
//! its own copy of the same cursor: byte-position error reporting,
//! `peek`/`bump`/`skip_ws`, single-char `eat`/`expect`, identifier scans,
//! quoted strings. The copies had already started to drift (ASCII-only vs
//! Unicode identifiers), and every new grammar was one more copy. The
//! *tokenizer* now lives here once; each grammar keeps its deliberate
//! differences as explicit choices:
//!
//! * identifier alphabets are a caller-supplied predicate ([`Cursor::ident`]);
//! * quoted strings come in two flavours — [`Cursor::quoted_escaped`]
//!   (tree text: `\"` and `\\` escapes, anything else is an error) and
//!   [`Cursor::quoted_raw`] (pattern constants: raw bytes up to the closing
//!   quote, no escapes) — so the two wire-visible grammars keep their exact
//!   historical semantics, byte for byte.
//!
//! Errors are a position + message pair ([`LexError`]); each grammar wraps
//! them into its own public error type via `From`.

use std::fmt;

/// A lexical error: byte offset + human-readable description. Grammars
/// convert this into their own error types ([`crate::text::TreeTextError`]
/// et al.), preserving the position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// A character cursor over a `&str` with byte-position error reporting.
///
/// All methods that skip leading whitespace say so; none allocate except
/// the escape-processing [`Cursor::quoted_escaped`] (and error paths).
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The whole input.
    pub fn input(&self) -> &'a str {
        self.input
    }

    /// The unconsumed suffix.
    pub fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// An error at the current position.
    pub fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            position: self.pos,
            message: message.into(),
        }
    }

    /// Next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Consume and return the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skip Unicode whitespace.
    pub fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Skip whitespace; consume `c` if it is next. Returns whether it was.
    pub fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Skip whitespace; consume the literal `kw` if it is next.
    pub fn eat_str(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// [`Cursor::eat`] or a positioned `expected {c:?}` error.
    pub fn expect(&mut self, c: char) -> Result<(), LexError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected {c:?}")))
        }
    }

    /// Skip whitespace, then true iff the input is exhausted.
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    /// Consume the longest (possibly empty) run of characters satisfying
    /// `pred`; no whitespace skipping. `FnMut` so callers can thread scan
    /// state (e.g. an in-quotes toggle) through the predicate.
    pub fn take_while(&mut self, mut pred: impl FnMut(char) -> bool) -> &'a str {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
        &self.input[start..self.pos]
    }

    /// Skip whitespace, then consume a non-empty run of `pred` characters —
    /// an identifier in the calling grammar's alphabet. On an empty match,
    /// errors with `expected {what}`.
    pub fn ident(
        &mut self,
        pred: impl FnMut(char) -> bool,
        what: &str,
    ) -> Result<&'a str, LexError> {
        self.skip_ws();
        let s = self.take_while(pred);
        if s.is_empty() {
            Err(self.error(format!("expected {what}")))
        } else {
            Ok(s)
        }
    }

    /// A quoted string with escapes: `"…"` where `\"` and `\\` are the only
    /// escapes (tree-text semantics). Assumes the caller has already seen
    /// the opening quote via [`Cursor::peek`] or skipped whitespace; this
    /// expects and consumes it.
    pub fn quoted_escaped(&mut self) -> Result<String, LexError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated quoted string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(c) => return Err(self.error(format!("invalid escape \\{c}"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    /// A raw quoted string: everything up to the next `"`, no escapes
    /// (pattern-constant semantics — a constant can hold any character but
    /// `"`). Expects and consumes the opening quote.
    pub fn quoted_raw(&mut self) -> Result<&'a str, LexError> {
        self.expect('"')?;
        let s = self.take_while(|c| c != '"');
        if self.peek() == Some('"') {
            self.bump();
            Ok(s)
        } else {
            Err(self.error("unterminated string constant"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_respect_the_predicate() {
        let mut c = Cursor::new("  abc-1 ✓rest");
        let id = c.ident(|ch| ch.is_ascii_alphanumeric() || ch == '-', "a name");
        assert_eq!(id.unwrap(), "abc-1");
        let err = c
            .ident(|ch| ch.is_ascii_alphanumeric(), "a name")
            .unwrap_err();
        assert_eq!(err.message, "expected a name");
        assert_eq!(err.position, 8);
    }

    #[test]
    fn quoted_flavours_differ_on_escapes() {
        let mut esc = Cursor::new(r#""a\"b\\c""#);
        assert_eq!(esc.quoted_escaped().unwrap(), "a\"b\\c");
        // The raw flavour stops at the first quote, escapes and all.
        let mut raw = Cursor::new(r#""a\"b""#);
        assert_eq!(raw.quoted_raw().unwrap(), "a\\");
        // Unknown escapes only error in the escaped flavour.
        assert!(Cursor::new(r#""\n""#).quoted_escaped().is_err());
        assert_eq!(Cursor::new(r#""\n""#).quoted_raw().unwrap(), "\\n");
    }

    #[test]
    fn eat_expect_and_end() {
        let mut c = Cursor::new(" ( x )  ");
        assert!(c.eat('('));
        assert!(!c.eat(')'));
        assert_eq!(
            c.ident(char::is_alphanumeric, "an identifier").unwrap(),
            "x"
        );
        c.expect(')').unwrap();
        assert!(c.at_end());
        let mut k = Cursor::new("  :- tail");
        assert!(k.eat_str(":-"));
        assert_eq!(k.rest(), " tail");
    }
}
