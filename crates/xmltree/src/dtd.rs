//! DTDs: content models, attribute sets, conformance, consistency.
//!
//! A DTD over `(E, A)` is a triple `(P, R, r)` (Section 2): `P` maps every
//! element type to a regular expression over element types, `R` maps every
//! element type to a set of attribute names, and `r` is the root type, which
//! may not occur in any content model and has no attributes.
//!
//! Besides ordered conformance `T ⊨ D` and unordered (weak) conformance
//! `T |≈ D` (Section 5.2), this module implements the structural analyses the
//! paper relies on:
//!
//! * the DTD graph `G(D)`, recursion, and the **nested-relational** class of
//!   Section 4 (the Clio class);
//! * DTD satisfiability and *consistency* (every element type appears in some
//!   conforming tree), and the trimming construction of **Lemma 2.2**;
//! * the `D°` and `D*` transformations and unique conforming trees used by
//!   the `O(n·m²)` consistency algorithm of **Theorem 4.5**;
//! * minimal conforming trees, used as witnesses throughout.

use crate::compiled::CompiledDtd;
use crate::name::{AttrName, ElementType};
use crate::tree::{NodeId, XmlTree};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock};
use xdx_relang::ast::Multiplicity;
use xdx_relang::parikh::perm_accepts;
use xdx_relang::{Nfa, Regex};

/// A Document Type Definition `(P, R, r)`.
#[derive(Debug, Clone)]
pub struct Dtd {
    root: ElementType,
    rules: BTreeMap<ElementType, Regex<ElementType>>,
    attrs: BTreeMap<ElementType, BTreeSet<AttrName>>,
    /// Pre-built NFAs for every content model (conformance and the chase
    /// query them constantly).
    nfas: BTreeMap<ElementType, Nfa<ElementType>>,
    /// Lazily-built compiled form (interned symbols + dense-table DFAs);
    /// shared by clones via `Arc`.
    compiled: OnceLock<Arc<CompiledDtd>>,
}

/// Errors raised when constructing or transforming a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// The root element type appears inside a content model, which the
    /// paper's definition forbids.
    RootInContentModel {
        /// The rule whose content model mentions the root.
        rule: ElementType,
    },
    /// The root element type was given attributes, which the paper's
    /// definition forbids.
    RootHasAttributes,
    /// The same element type was given two rules.
    DuplicateRule {
        /// The element type defined twice.
        element: ElementType,
    },
    /// Attributes were declared for an element type that has no rule and is
    /// never mentioned in any content model.
    AttributesForUnknownElement {
        /// The unknown element type.
        element: ElementType,
    },
    /// A content-model string failed to parse.
    RegexParse {
        /// The rule being parsed.
        rule: ElementType,
        /// The parser's message.
        message: String,
    },
    /// The DTD denotes the empty set of trees (`SAT(D) = ∅`), so the
    /// requested operation (e.g. trimming to a consistent DTD) is undefined.
    Unsatisfiable,
    /// The DTD is not nested-relational but a nested-relational-only
    /// operation (`D°`, `D*`, Theorem 4.5) was requested.
    NotNestedRelational {
        /// Why the DTD is not nested-relational.
        reason: String,
    },
    /// The DTD does not admit a unique conforming tree.
    NotSingleTree {
        /// Why there is no unique tree.
        reason: String,
    },
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::RootInContentModel { rule } => {
                write!(f, "root element type occurs in the content model of {rule}")
            }
            DtdError::RootHasAttributes => {
                write!(f, "the root element type cannot have attributes")
            }
            DtdError::DuplicateRule { element } => write!(f, "duplicate rule for {element}"),
            DtdError::AttributesForUnknownElement { element } => {
                write!(f, "attributes declared for unknown element type {element}")
            }
            DtdError::RegexParse { rule, message } => {
                write!(f, "content model of {rule} failed to parse: {message}")
            }
            DtdError::Unsatisfiable => write!(f, "the DTD admits no conforming tree"),
            DtdError::NotNestedRelational { reason } => {
                write!(f, "the DTD is not nested-relational: {reason}")
            }
            DtdError::NotSingleTree { reason } => {
                write!(
                    f,
                    "the DTD does not have a unique conforming tree: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for DtdError {}

/// A single conformance violation found by [`Dtd::violations`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceViolation {
    /// The root of the tree is not labelled with the DTD's root type.
    RootLabel {
        /// The label found at the tree root.
        found: ElementType,
        /// The required root type.
        expected: ElementType,
    },
    /// A node is labelled with an element type the DTD does not know.
    UnknownElementType {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: ElementType,
    },
    /// The children of a node do not spell a word of the content model
    /// (ordered check) or a permutation of one (unordered check).
    ContentModel {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: ElementType,
        /// The labels of its children, in order.
        children: Vec<ElementType>,
    },
    /// A node carries an attribute not allowed by `R`.
    UnexpectedAttribute {
        /// The offending node.
        node: NodeId,
        /// The attribute present but not allowed.
        attr: AttrName,
    },
    /// A node is missing an attribute required by `R`.
    MissingAttribute {
        /// The offending node.
        node: NodeId,
        /// The attribute required but absent.
        attr: AttrName,
    },
}

impl Dtd {
    /// Start building a DTD with the given root element type.
    pub fn builder(root: impl Into<ElementType>) -> DtdBuilder {
        DtdBuilder::new(root)
    }

    /// The root element type.
    pub fn root(&self) -> &ElementType {
        &self.root
    }

    /// All element types of the DTD, sorted (borrowed; collect if you need
    /// ownership).
    pub fn element_types(&self) -> impl ExactSizeIterator<Item = &ElementType> + Clone {
        self.rules.keys()
    }

    /// The compiled form of this DTD: interned symbols, dense-table DFAs and
    /// occurrence-bound summaries. Built on first use, then cached (clones of
    /// this `Dtd` share the compiled form through an `Arc`).
    pub fn compiled(&self) -> &CompiledDtd {
        self.compiled
            .get_or_init(|| Arc::new(CompiledDtd::new(self)))
    }

    /// The compiled form behind its shared `Arc` (same lazily-built cache as
    /// [`Dtd::compiled`]). Lets callers hold the compiled DTD past this
    /// `Dtd`'s borrow, or identity-tag caches keyed on it (`Arc::ptr_eq` is
    /// sound because the `Arc` keeps the allocation alive).
    pub fn compiled_arc(&self) -> Arc<CompiledDtd> {
        Arc::clone(
            self.compiled
                .get_or_init(|| Arc::new(CompiledDtd::new(self))),
        )
    }

    /// The content model `P(ℓ)`.
    ///
    /// Every element type of the DTD has a rule (missing rules default to
    /// `ε` at construction time); unknown element types return `ε` as well.
    pub fn rule(&self, element: &ElementType) -> Regex<ElementType> {
        self.rules.get(element).cloned().unwrap_or(Regex::Epsilon)
    }

    /// The attribute set `R(ℓ)`.
    pub fn attrs_of(&self, element: &ElementType) -> BTreeSet<AttrName> {
        self.attrs.get(element).cloned().unwrap_or_default()
    }

    /// The pre-built NFA of the content model of `element`, if the element
    /// type is known.
    pub fn content_nfa(&self, element: &ElementType) -> Option<&Nfa<ElementType>> {
        self.nfas.get(element)
    }

    /// Does the DTD know this element type?
    pub fn has_element(&self, element: &ElementType) -> bool {
        self.rules.contains_key(element)
    }

    /// A size measure for complexity experiments: total number of regex
    /// nodes plus declared attributes plus element types.
    pub fn size(&self) -> usize {
        self.rules.values().map(|r| r.len()).sum::<usize>()
            + self.attrs.values().map(|a| a.len()).sum::<usize>()
            + self.rules.len()
    }

    // ------------------------------------------------------------------
    // Conformance
    // ------------------------------------------------------------------

    /// All violations of ordered conformance `T ⊨ D`.
    ///
    /// Evaluates on the compiled fast path ([`Dtd::compiled`]); the original
    /// NFA-simulation path is kept as [`Dtd::violations_reference`] and the
    /// two are differential-tested against each other.
    pub fn violations(&self, tree: &XmlTree) -> Vec<ConformanceViolation> {
        self.compiled().violations(tree, true)
    }

    /// All violations of unordered (weak) conformance `T |≈ D` (compiled
    /// fast path; reference kept as [`Dtd::violations_unordered_reference`]).
    pub fn violations_unordered(&self, tree: &XmlTree) -> Vec<ConformanceViolation> {
        self.compiled().violations(tree, false)
    }

    /// Reference implementation of [`Dtd::violations`]: per-node NFA
    /// simulation over `BTreeSet` state sets.
    pub fn violations_reference(&self, tree: &XmlTree) -> Vec<ConformanceViolation> {
        self.violations_impl(tree, true)
    }

    /// Reference implementation of [`Dtd::violations_unordered`].
    pub fn violations_unordered_reference(&self, tree: &XmlTree) -> Vec<ConformanceViolation> {
        self.violations_impl(tree, false)
    }

    fn violations_impl(&self, tree: &XmlTree, ordered: bool) -> Vec<ConformanceViolation> {
        let mut out = Vec::new();
        let root_label = tree.label(tree.root());
        if root_label != &self.root {
            out.push(ConformanceViolation::RootLabel {
                found: root_label.clone(),
                expected: self.root.clone(),
            });
        }
        for node in tree.nodes() {
            let label = tree.label(node).clone();
            if !self.has_element(&label) {
                out.push(ConformanceViolation::UnknownElementType { node, label });
                continue;
            }
            // Attribute conditions: ρ@a(v) defined iff @a ∈ R(ℓ).
            let allowed = self.attrs_of(&label);
            for attr in tree.attrs(node).keys() {
                if !allowed.contains(attr) {
                    out.push(ConformanceViolation::UnexpectedAttribute {
                        node,
                        attr: attr.clone(),
                    });
                }
            }
            for attr in &allowed {
                if tree.attr(node, attr).is_none() {
                    out.push(ConformanceViolation::MissingAttribute {
                        node,
                        attr: attr.clone(),
                    });
                }
            }
            // Content model condition.
            let child_labels: Vec<ElementType> = tree
                .children(node)
                .iter()
                .map(|&c| tree.label(c).clone())
                .collect();
            let ok = match self.content_nfa(&label) {
                Some(nfa) => {
                    if ordered {
                        nfa.matches(&child_labels)
                    } else {
                        let mut counts: BTreeMap<ElementType, u64> = BTreeMap::new();
                        for l in &child_labels {
                            *counts.entry(l.clone()).or_insert(0) += 1;
                        }
                        perm_accepts(nfa, &counts)
                    }
                }
                None => false,
            };
            if !ok {
                out.push(ConformanceViolation::ContentModel {
                    node,
                    label,
                    children: child_labels,
                });
            }
        }
        out
    }

    /// Ordered conformance `T ⊨ D` (compiled fast path; bails on the first
    /// violation instead of collecting them all).
    pub fn conforms(&self, tree: &XmlTree) -> bool {
        self.compiled().conforms(tree)
    }

    /// Unordered (weak) conformance `T |≈ D`: every node's children form a
    /// permutation of a word of the content model (compiled fast path).
    pub fn conforms_unordered(&self, tree: &XmlTree) -> bool {
        self.compiled().conforms_unordered(tree)
    }

    /// Reference implementation of [`Dtd::conforms`] (NFA simulation).
    pub fn conforms_reference(&self, tree: &XmlTree) -> bool {
        self.violations_reference(tree).is_empty()
    }

    /// Reference implementation of [`Dtd::conforms_unordered`].
    pub fn conforms_unordered_reference(&self, tree: &XmlTree) -> bool {
        self.violations_unordered_reference(tree).is_empty()
    }

    // ------------------------------------------------------------------
    // DTD graph, recursion, nested-relational class
    // ------------------------------------------------------------------

    /// The DTD graph `G(D)`: an edge `ℓ → ℓ'` whenever `ℓ'` occurs in
    /// `P(ℓ)`.
    pub fn graph(&self) -> BTreeMap<ElementType, BTreeSet<ElementType>> {
        self.rules
            .iter()
            .map(|(l, r)| (l.clone(), r.alphabet()))
            .collect()
    }

    /// Is the DTD recursive (does `G(D)` contain a cycle)?
    pub fn is_recursive(&self) -> bool {
        // DFS-based cycle detection.
        let graph = self.graph();
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<&ElementType, Mark> =
            graph.keys().map(|k| (k, Mark::White)).collect();
        fn visit<'a>(
            node: &'a ElementType,
            graph: &'a BTreeMap<ElementType, BTreeSet<ElementType>>,
            marks: &mut BTreeMap<&'a ElementType, Mark>,
        ) -> bool {
            match marks.get(node).copied() {
                Some(Mark::Grey) => return true,
                Some(Mark::Black) | None => return false,
                Some(Mark::White) => {}
            }
            marks.insert(node, Mark::Grey);
            if let Some(succs) = graph.get(node) {
                for s in succs {
                    if graph.contains_key(s) && visit(s, graph, marks) {
                        return true;
                    }
                }
            }
            marks.insert(node, Mark::Black);
            false
        }
        let keys: Vec<&ElementType> = graph.keys().collect();
        for k in keys {
            if marks[k] == Mark::White && visit(k, &graph, &mut marks) {
                return true;
            }
        }
        false
    }

    /// Element types reachable from `start` in `G(D)` (including `start`).
    pub fn reachable_from(&self, start: &ElementType) -> BTreeSet<ElementType> {
        let graph = self.graph();
        let mut seen = BTreeSet::new();
        let mut stack = vec![start.clone()];
        while let Some(l) = stack.pop() {
            if !seen.insert(l.clone()) {
                continue;
            }
            if let Some(succs) = graph.get(&l) {
                for s in succs {
                    if !seen.contains(s) {
                        stack.push(s.clone());
                    }
                }
            }
        }
        seen
    }

    /// Is the DTD nested-relational: non-recursive and every rule of the form
    /// `ℓ̃_1 … ℓ̃_m` with pairwise-distinct `ℓ_i` and `ℓ̃` one of `ℓ`, `ℓ?`,
    /// `ℓ+`, `ℓ*`?
    pub fn is_nested_relational(&self) -> bool {
        !self.is_recursive() && self.rules.values().all(|r| r.is_nested_relational_shape())
    }

    /// Restrict the DTD to the element types reachable from `start`, making
    /// `start` the new root (`D_ℓ` in the proof of Theorem 4.5).
    pub fn restricted_to(&self, start: &ElementType) -> Dtd {
        let reach = self.reachable_from(start);
        let rules = self
            .rules
            .iter()
            .filter(|(l, _)| reach.contains(*l))
            .map(|(l, r)| (l.clone(), r.clone()))
            .collect();
        let attrs = self
            .attrs
            .iter()
            .filter(|(l, _)| reach.contains(*l))
            .map(|(l, a)| (l.clone(), a.clone()))
            .collect();
        Dtd::assemble(start.clone(), rules, attrs)
    }

    // ------------------------------------------------------------------
    // Satisfiability, consistency, trimming (Lemma 2.2)
    // ------------------------------------------------------------------

    /// The *productive* element types: those `ℓ` for which some finite tree
    /// rooted at an `ℓ`-node satisfies all content models below it.
    pub fn productive_elements(&self) -> BTreeSet<ElementType> {
        let mut productive: BTreeSet<ElementType> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (l, r) in &self.rules {
                if productive.contains(l) {
                    continue;
                }
                let dead: BTreeSet<ElementType> = r
                    .alphabet()
                    .into_iter()
                    .filter(|s| !productive.contains(s) || !self.rules.contains_key(s))
                    .collect();
                let reduced = r.eliminate_symbols(&dead);
                if !reduced.is_empty_language() {
                    productive.insert(l.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        productive
    }

    /// Is `SAT(D)` non-empty?
    pub fn is_satisfiable(&self) -> bool {
        self.productive_elements().contains(&self.root)
    }

    /// Element types that appear in at least one conforming tree.
    pub fn appearing_elements(&self) -> BTreeSet<ElementType> {
        let productive = self.productive_elements();
        if !productive.contains(&self.root) {
            return BTreeSet::new();
        }
        let dead: BTreeSet<ElementType> = self
            .rules
            .keys()
            .filter(|l| !productive.contains(*l))
            .cloned()
            .collect();
        // ℓ' is usable from ℓ iff ℓ' survives in P(ℓ) after eliminating the
        // non-productive symbols.
        let mut appearing: BTreeSet<ElementType> = BTreeSet::new();
        let mut stack = vec![self.root.clone()];
        while let Some(l) = stack.pop() {
            if !appearing.insert(l.clone()) {
                continue;
            }
            let reduced = self.rule(&l).eliminate_symbols(&dead);
            for s in reduced.alphabet() {
                if !appearing.contains(&s) {
                    stack.push(s);
                }
            }
        }
        appearing
    }

    /// Is the DTD *consistent*: does every element type appear in some
    /// conforming tree?
    pub fn is_consistent(&self) -> bool {
        self.is_satisfiable() && self.appearing_elements().len() == self.rules.len()
    }

    /// The trimming construction of Lemma 2.2: produce a consistent DTD `D'`
    /// with `SAT(D) = SAT(D')`, in polynomial time. Fails with
    /// [`DtdError::Unsatisfiable`] when `SAT(D) = ∅`.
    pub fn trim_to_consistent(&self) -> Result<Dtd, DtdError> {
        if !self.is_satisfiable() {
            return Err(DtdError::Unsatisfiable);
        }
        let appearing = self.appearing_elements();
        let dead: BTreeSet<ElementType> = self
            .rules
            .keys()
            .filter(|l| !appearing.contains(*l))
            .cloned()
            .collect();
        let rules: BTreeMap<ElementType, Regex<ElementType>> = self
            .rules
            .iter()
            .filter(|(l, _)| appearing.contains(*l))
            .map(|(l, r)| (l.clone(), r.eliminate_symbols(&dead)))
            .collect();
        let attrs = self
            .attrs
            .iter()
            .filter(|(l, _)| appearing.contains(*l))
            .map(|(l, a)| (l.clone(), a.clone()))
            .collect();
        Ok(Dtd::assemble(self.root.clone(), rules, attrs))
    }

    // ------------------------------------------------------------------
    // Witness trees
    // ------------------------------------------------------------------

    /// Build a minimal conforming tree, assigning every required attribute a
    /// value produced by `fill`. Returns `None` when `SAT(D) = ∅`.
    pub fn minimal_conforming_tree_with(
        &self,
        mut fill: impl FnMut(&ElementType, &AttrName) -> Value,
    ) -> Option<XmlTree> {
        // Rank the element types by the fixpoint iteration at which they
        // became productive and record a witness word over lower-ranked
        // symbols; recursion on ranks terminates even for recursive DTDs.
        let mut rank: BTreeMap<ElementType, usize> = BTreeMap::new();
        let mut witness: BTreeMap<ElementType, Vec<ElementType>> = BTreeMap::new();
        let mut iteration = 0usize;
        loop {
            let mut changed = false;
            for (l, r) in &self.rules {
                if rank.contains_key(l) {
                    continue;
                }
                let dead: BTreeSet<ElementType> = r
                    .alphabet()
                    .into_iter()
                    .filter(|s| !rank.contains_key(s) || !self.rules.contains_key(s))
                    .collect();
                let reduced = r.eliminate_symbols(&dead);
                if !reduced.is_empty_language() {
                    let word = Nfa::from_regex(&reduced)
                        .shortest_word()
                        .expect("non-empty language has a shortest word");
                    rank.insert(l.clone(), iteration);
                    witness.insert(l.clone(), word);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            iteration += 1;
        }
        if !rank.contains_key(&self.root) {
            return None;
        }
        let mut tree = XmlTree::new(self.root.clone());
        let root = tree.root();
        self.fill_node(&mut tree, root, &witness, &mut fill);
        Some(tree)
    }

    fn fill_node(
        &self,
        tree: &mut XmlTree,
        node: NodeId,
        witness: &BTreeMap<ElementType, Vec<ElementType>>,
        fill: &mut impl FnMut(&ElementType, &AttrName) -> Value,
    ) {
        let label = tree.label(node).clone();
        for attr in self.attrs_of(&label) {
            let v = fill(&label, &attr);
            tree.set_attr(node, attr, v);
        }
        let word = witness.get(&label).cloned().unwrap_or_default();
        for child_label in word {
            let child = tree.add_child(node, child_label);
            self.fill_node(tree, child, witness, fill);
        }
    }

    /// Build a minimal conforming tree whose attributes all carry the
    /// constant `"s0"` (the fixed string used in the proof of Claim 4.2).
    pub fn minimal_conforming_tree(&self) -> Option<XmlTree> {
        self.minimal_conforming_tree_with(|_, _| Value::constant("s0"))
    }

    /// If the DTD admits exactly one conforming tree up to attribute values
    /// (every rule a concatenation of distinct symbols or `ε`, and the DTD is
    /// non-recursive), build that tree using `fill` for attribute values.
    pub fn unique_conforming_tree_with(
        &self,
        mut fill: impl FnMut(&ElementType, &AttrName) -> Value,
    ) -> Result<XmlTree, DtdError> {
        if self.is_recursive() {
            return Err(DtdError::NotSingleTree {
                reason: "the DTD is recursive".to_string(),
            });
        }
        for (l, r) in &self.rules {
            match r.nested_relational_factors() {
                Some(factors) if factors.iter().all(|f| f.multiplicity == Multiplicity::One) => {}
                _ => {
                    return Err(DtdError::NotSingleTree {
                        reason: format!(
                        "the content model of {l} is not a concatenation of distinct element types"
                    ),
                    })
                }
            }
        }
        let mut tree = XmlTree::new(self.root.clone());
        let mut stack = vec![tree.root()];
        while let Some(node) = stack.pop() {
            let label = tree.label(node).clone();
            for attr in self.attrs_of(&label) {
                let v = fill(&label, &attr);
                tree.set_attr(node, attr, v);
            }
            let factors = self
                .rule(&label)
                .nested_relational_factors()
                .expect("checked above");
            for f in factors {
                let child = tree.add_child(node, f.symbol.clone());
                stack.push(child);
            }
        }
        Ok(tree)
    }

    // ------------------------------------------------------------------
    // The D° and D* transformations of Theorem 4.5
    // ------------------------------------------------------------------

    /// The `D°` transformation: in every nested-relational rule, keep
    /// mandatory factors (`ℓ`, `ℓ+` become `ℓ`) and drop optional ones
    /// (`ℓ?`, `ℓ*` become `ε`).
    pub fn to_circle(&self) -> Result<Dtd, DtdError> {
        self.map_nested_factors(|m| match m {
            Multiplicity::One | Multiplicity::Plus => Some(Multiplicity::One),
            Multiplicity::Optional | Multiplicity::Star => None,
        })
    }

    /// The `D*` transformation: every factor becomes mandatory and single
    /// (`ℓ`, `ℓ?`, `ℓ+`, `ℓ*` all become `ℓ`).
    pub fn to_star(&self) -> Result<Dtd, DtdError> {
        self.map_nested_factors(|_| Some(Multiplicity::One))
    }

    fn map_nested_factors(
        &self,
        f: impl Fn(Multiplicity) -> Option<Multiplicity>,
    ) -> Result<Dtd, DtdError> {
        if !self.is_nested_relational() {
            return Err(DtdError::NotNestedRelational {
                reason: if self.is_recursive() {
                    "the DTD is recursive".to_string()
                } else {
                    "some content model is not of nested-relational shape".to_string()
                },
            });
        }
        let mut rules = BTreeMap::new();
        for (l, r) in &self.rules {
            let factors = r
                .nested_relational_factors()
                .expect("nested-relational checked above");
            let parts: Vec<Regex<ElementType>> = factors
                .into_iter()
                .filter_map(|factor| {
                    f(factor.multiplicity).map(|m| {
                        let sym = Regex::Symbol(factor.symbol);
                        match m {
                            Multiplicity::One => sym,
                            Multiplicity::Optional => Regex::opt(sym),
                            Multiplicity::Plus => Regex::plus(sym),
                            Multiplicity::Star => Regex::star(sym),
                        }
                    })
                })
                .collect();
            rules.insert(l.clone(), Regex::seq(parts));
        }
        Ok(Dtd::assemble(self.root.clone(), rules, self.attrs.clone()))
    }

    // ------------------------------------------------------------------
    // Construction helpers
    // ------------------------------------------------------------------

    fn assemble(
        root: ElementType,
        mut rules: BTreeMap<ElementType, Regex<ElementType>>,
        attrs: BTreeMap<ElementType, BTreeSet<AttrName>>,
    ) -> Dtd {
        // Every element type mentioned anywhere gets a rule (defaulting to ε).
        let mut mentioned: BTreeSet<ElementType> = BTreeSet::new();
        mentioned.insert(root.clone());
        for r in rules.values() {
            mentioned.extend(r.alphabet());
        }
        for l in mentioned {
            rules.entry(l).or_insert(Regex::Epsilon);
        }
        let nfas = rules
            .iter()
            .map(|(l, r)| (l.clone(), Nfa::from_regex(r)))
            .collect();
        Dtd {
            root,
            rules,
            attrs,
            nfas,
            compiled: OnceLock::new(),
        }
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "root: {}", self.root)?;
        for (l, r) in &self.rules {
            writeln!(f, "  {l} -> {r}")?;
            let attrs = self.attrs_of(l);
            if !attrs.is_empty() {
                let names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                writeln!(f, "    attributes: {}", names.join(", "))?;
            }
        }
        Ok(())
    }
}

/// Builder for [`Dtd`]s.
#[derive(Debug)]
pub struct DtdBuilder {
    root: ElementType,
    rules: BTreeMap<ElementType, Regex<ElementType>>,
    attrs: BTreeMap<ElementType, BTreeSet<AttrName>>,
    errors: Vec<DtdError>,
}

impl DtdBuilder {
    /// Start a DTD with the given root element type.
    pub fn new(root: impl Into<ElementType>) -> Self {
        DtdBuilder {
            root: root.into(),
            rules: BTreeMap::new(),
            attrs: BTreeMap::new(),
            errors: Vec::new(),
        }
    }

    /// Add a rule `element → content`, where `content` uses the textual regex
    /// syntax of [`xdx_relang::parser`] (e.g. `"book*"`, `"title author+"`).
    pub fn rule(mut self, element: impl Into<ElementType>, content: &str) -> Self {
        let element = element.into();
        match xdx_relang::parser::parse(content) {
            Ok(r) => {
                let regex = r.map(&mut |s: &String| ElementType::new(s));
                if self.rules.insert(element.clone(), regex).is_some() {
                    self.errors.push(DtdError::DuplicateRule { element });
                }
            }
            Err(e) => self.errors.push(DtdError::RegexParse {
                rule: element,
                message: e.to_string(),
            }),
        }
        self
    }

    /// Add a rule with an already-built regular expression.
    pub fn rule_regex(
        mut self,
        element: impl Into<ElementType>,
        content: Regex<ElementType>,
    ) -> Self {
        let element = element.into();
        if self.rules.insert(element.clone(), content).is_some() {
            self.errors.push(DtdError::DuplicateRule { element });
        }
        self
    }

    /// Declare the attribute set of an element type.
    pub fn attributes<A: Into<AttrName>>(
        mut self,
        element: impl Into<ElementType>,
        attrs: impl IntoIterator<Item = A>,
    ) -> Self {
        let element = element.into();
        self.attrs
            .entry(element)
            .or_default()
            .extend(attrs.into_iter().map(Into::into));
        self
    }

    /// Finish building, validating the paper's well-formedness conditions.
    pub fn build(self) -> Result<Dtd, DtdError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        // The root may not occur in content models and may not have attributes.
        for (l, r) in &self.rules {
            if r.alphabet().contains(&self.root) {
                return Err(DtdError::RootInContentModel { rule: l.clone() });
            }
        }
        if self
            .attrs
            .get(&self.root)
            .map(|a| !a.is_empty())
            .unwrap_or(false)
        {
            return Err(DtdError::RootHasAttributes);
        }
        // Attributes may only be declared for known element types.
        let mut known: BTreeSet<ElementType> = self.rules.keys().cloned().collect();
        known.insert(self.root.clone());
        for r in self.rules.values() {
            known.extend(r.alphabet());
        }
        for l in self.attrs.keys() {
            if !known.contains(l) {
                return Err(DtdError::AttributesForUnknownElement { element: l.clone() });
            }
        }
        Ok(Dtd::assemble(self.root, self.rules, self.attrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    /// The source DTD of Figure 1(a).
    fn source_dtd() -> Dtd {
        Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .rule("author", "eps")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap()
    }

    /// The target DTD of Figure 2(a).
    fn target_dtd() -> Dtd {
        Dtd::builder("bib")
            .rule("bib", "writer*")
            .rule("writer", "work*")
            .rule("work", "eps")
            .attributes("writer", ["@name"])
            .attributes("work", ["@title", "@year"])
            .build()
            .unwrap()
    }

    fn figure1_tree() -> XmlTree {
        TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "Combinatorial Optimization")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
                    .child("author", |a| {
                        a.attr("@name", "Steiglitz").attr("@aff", "Princeton")
                    })
            })
            .child("book", |b| {
                b.attr("@title", "Computational Complexity")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
            })
            .build()
    }

    #[test]
    fn figure_1_document_conforms_to_its_dtd() {
        let d = source_dtd();
        let t = figure1_tree();
        assert!(d.conforms(&t));
        assert!(d.conforms_unordered(&t));
    }

    #[test]
    fn conformance_violations_are_reported() {
        let d = source_dtd();
        // wrong root
        let t1 = TreeBuilder::new("bib").build();
        assert!(matches!(
            d.violations(&t1).first(),
            Some(ConformanceViolation::RootLabel { .. })
        ));
        // missing required attribute and unexpected attribute
        let mut t2 = XmlTree::new("db");
        let b = t2.add_child(t2.root(), "book");
        t2.set_attr(b, "@isbn", "123");
        let v = d.violations(&t2);
        assert!(v
            .iter()
            .any(|x| matches!(x, ConformanceViolation::UnexpectedAttribute { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, ConformanceViolation::MissingAttribute { .. })));
        // content model violation: author under db
        let mut t3 = XmlTree::new("db");
        let a = t3.add_child(t3.root(), "author");
        t3.set_attr(a, "@name", "X");
        t3.set_attr(a, "@aff", "Y");
        assert!(d
            .violations(&t3)
            .iter()
            .any(|x| matches!(x, ConformanceViolation::ContentModel { .. })));
        // unknown element type
        let mut t4 = XmlTree::new("db");
        t4.add_child(t4.root(), "journal");
        assert!(d
            .violations(&t4)
            .iter()
            .any(|x| matches!(x, ConformanceViolation::UnknownElementType { .. })));
    }

    #[test]
    fn ordered_vs_unordered_conformance() {
        // D: r → a b ; the tree with children [b, a] conforms only unordered.
        let d = Dtd::builder("r").rule("r", "a b").build().unwrap();
        let mut t = XmlTree::new("r");
        t.add_child(t.root(), "b");
        t.add_child(t.root(), "a");
        assert!(!d.conforms(&t));
        assert!(d.conforms_unordered(&t));
    }

    #[test]
    fn graph_recursion_and_nested_relational() {
        let d = source_dtd();
        assert!(!d.is_recursive());
        assert!(d.is_nested_relational());
        let g = d.graph();
        assert!(g[&ElementType::new("db")].contains(&ElementType::new("book")));

        let rec = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "b?")
            .rule("b", "a?")
            .build()
            .unwrap();
        assert!(rec.is_recursive());
        assert!(!rec.is_nested_relational());

        let not_nr = Dtd::builder("r").rule("r", "(a b)*").build().unwrap();
        assert!(!not_nr.is_recursive());
        assert!(!not_nr.is_nested_relational());
    }

    #[test]
    fn satisfiability_and_consistency() {
        // a → b, b → a: neither is productive, so the DTD (rooted at a) is
        // unsatisfiable.
        let d = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "b")
            .rule("b", "a")
            .build()
            .unwrap();
        assert!(!d.is_satisfiable());
        assert!(d.trim_to_consistent().is_err());
        assert!(d.minimal_conforming_tree().is_none());

        // r → a | b, a → ε, b → b (b never productive): satisfiable but not
        // consistent; trimming removes b.
        let d2 = Dtd::builder("r")
            .rule("r", "a|b")
            .rule("a", "eps")
            .rule("b", "b")
            .build()
            .unwrap();
        assert!(d2.is_satisfiable());
        assert!(!d2.is_consistent());
        let trimmed = d2.trim_to_consistent().unwrap();
        assert!(trimmed.is_consistent());
        assert!(!trimmed.has_element(&ElementType::new("b")));
        assert_eq!(
            trimmed.rule(&"r".into()),
            Regex::Symbol(ElementType::new("a"))
        );

        // the trimmed DTD accepts the same trees
        let t = {
            let mut t = XmlTree::new("r");
            t.add_child(t.root(), "a");
            t
        };
        assert!(d2.conforms(&t));
        assert!(trimmed.conforms(&t));
    }

    #[test]
    fn trimming_preserves_sat_on_star_rules() {
        // r → (a|b)* with b unproductive: trimming rewrites to a*.
        let d = Dtd::builder("r")
            .rule("r", "(a|b)*")
            .rule("a", "eps")
            .rule("b", "b")
            .build()
            .unwrap();
        let trimmed = d.trim_to_consistent().unwrap();
        assert_eq!(
            trimmed.rule(&"r".into()),
            Regex::star(Regex::Symbol("a".into()))
        );
        assert!(trimmed.is_consistent());
    }

    #[test]
    fn minimal_conforming_tree_of_figure_1_dtd() {
        let d = source_dtd();
        let t = d.minimal_conforming_tree().unwrap();
        // db with zero books is the minimal tree.
        assert_eq!(t.size(), 1);
        assert!(d.conforms(&t));

        // A DTD where the minimum requires nesting: db → book+, book → author+
        let d2 = Dtd::builder("db")
            .rule("db", "book+")
            .rule("book", "author+")
            .rule("author", "eps")
            .attributes("author", ["@name"])
            .build()
            .unwrap();
        let t2 = d2.minimal_conforming_tree().unwrap();
        assert!(d2.conforms(&t2));
        assert_eq!(t2.size(), 3);
    }

    #[test]
    fn minimal_tree_of_recursive_dtd_terminates() {
        // r → a, a → a | ε : recursion with an escape hatch.
        let d = Dtd::builder("r")
            .rule("r", "a")
            .rule("a", "a | eps")
            .build()
            .unwrap();
        let t = d.minimal_conforming_tree().unwrap();
        assert!(d.conforms(&t));
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn circle_and_star_transformations() {
        let d = Dtd::builder("r")
            .rule("r", "a? b+ c* d")
            .rule("a", "eps")
            .rule("b", "eps")
            .rule("c", "eps")
            .rule("d", "eps")
            .build()
            .unwrap();
        let circle = d.to_circle().unwrap();
        assert_eq!(
            circle.rule(&"r".into()),
            Regex::concat(Regex::Symbol("b".into()), Regex::Symbol("d".into()))
        );
        let star = d.to_star().unwrap();
        let expected = Regex::seq([
            Regex::Symbol(ElementType::new("a")),
            Regex::Symbol(ElementType::new("b")),
            Regex::Symbol(ElementType::new("c")),
            Regex::Symbol(ElementType::new("d")),
        ]);
        assert_eq!(star.rule(&"r".into()), expected);

        // D* admits exactly one tree.
        let unique = star
            .unique_conforming_tree_with(|_, _| Value::constant("s0"))
            .unwrap();
        assert!(star.conforms(&unique));
        assert_eq!(unique.size(), 5);

        // non-nested-relational DTDs are rejected
        let bad = Dtd::builder("r").rule("r", "(a b)*").build().unwrap();
        assert!(bad.to_circle().is_err());
    }

    #[test]
    fn unique_tree_requires_single_multiplicities() {
        let d = Dtd::builder("r").rule("r", "a*").build().unwrap();
        assert!(d
            .unique_conforming_tree_with(|_, _| Value::constant("x"))
            .is_err());
    }

    #[test]
    fn builder_validation() {
        // root in a content model
        let e = Dtd::builder("r").rule("a", "r").build().unwrap_err();
        assert!(matches!(e, DtdError::RootInContentModel { .. }));
        // root with attributes
        let e2 = Dtd::builder("r")
            .rule("r", "a")
            .attributes("r", ["@x"])
            .build()
            .unwrap_err();
        assert_eq!(e2, DtdError::RootHasAttributes);
        // duplicate rule
        let e3 = Dtd::builder("r")
            .rule("a", "eps")
            .rule("a", "eps")
            .build()
            .unwrap_err();
        assert!(matches!(e3, DtdError::DuplicateRule { .. }));
        // attributes for an element that never occurs
        let e4 = Dtd::builder("r")
            .rule("r", "a")
            .attributes("ghost", ["@x"])
            .build()
            .unwrap_err();
        assert!(matches!(e4, DtdError::AttributesForUnknownElement { .. }));
        // parse error
        let e5 = Dtd::builder("r").rule("r", "a )").build().unwrap_err();
        assert!(matches!(e5, DtdError::RegexParse { .. }));
    }

    #[test]
    fn mentioned_elements_get_default_epsilon_rules() {
        let d = Dtd::builder("r").rule("r", "a b*").build().unwrap();
        assert!(d.has_element(&"a".into()));
        assert!(d.has_element(&"b".into()));
        assert_eq!(d.rule(&"a".into()), Regex::Epsilon);
        assert_eq!(d.element_types().len(), 3);
        assert!(d.element_types().eq(["a", "b", "r"]
            .iter()
            .map(ElementType::new)
            .collect::<Vec<_>>()
            .iter()));
    }

    #[test]
    fn restriction_to_subtree_of_graph() {
        let d = target_dtd();
        let w = d.restricted_to(&"writer".into());
        assert_eq!(w.root(), &ElementType::new("writer"));
        assert!(w.has_element(&"work".into()));
        assert!(!w.has_element(&"bib".into()));
    }

    #[test]
    fn size_is_monotone_in_rules() {
        assert!(target_dtd().size() >= 6);
    }

    #[test]
    fn display_lists_rules_and_attributes() {
        let s = format!("{}", source_dtd());
        assert!(s.contains("root: db"));
        assert!(s.contains("book -> author*"));
        assert!(s.contains("@title"));
    }
}
