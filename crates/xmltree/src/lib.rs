//! # xdx-xmltree — XML documents and DTDs
//!
//! The document substrate of the XML data exchange library reproducing
//! Arenas & Libkin, *"XML Data Exchange: Consistency and Query Answering"*
//! (PODS 2005 / JACM 2008).
//!
//! Section 2 of the paper models XML documents as finite ordered unranked
//! trees whose nodes are labelled with *element types* and carry *attribute*
//! values drawn from a domain `Str` partitioned into constants (`Const`) and
//! nulls (`Var`). Schemas are DTDs `(P, R, r)`: a content model `P(ℓ)`
//! (regular expression over element types) and an attribute set `R(ℓ)` per
//! element type, plus a distinguished root type `r`.
//!
//! This crate provides:
//!
//! * [`name`] — cheap clone-friendly newtypes [`ElementType`] and [`AttrName`];
//! * [`value`] — attribute [`Value`]s (constants vs nulls) and the fresh-null
//!   generator used when populating target documents;
//! * [`tree`] — the arena-based [`XmlTree`] with ordered and unordered views,
//!   a builder, traversals, and the structural-surgery operations the chase
//!   of Section 6.1 needs (adding children, merging sibling subtrees,
//!   replacing subtrees);
//! * [`dtd`] — [`Dtd`] with ordered conformance `T ⊨ D`, unordered (weak)
//!   conformance `T |≈ D`, the DTD graph, recursion and nested-relational
//!   tests, DTD consistency and the trimming construction of Lemma 2.2, and
//!   the `D°`/`D*` transformations used by the nested-relational consistency
//!   algorithm (Theorem 4.5);
//! * [`text`] — a lossless, iterative (depth-bomb-safe) text serialization
//!   of trees with a total parser; the default document codec of the
//!   `xdx-server` wire protocol and the differential oracle for [`binary`];
//! * [`binary`] — the length-prefixed binary preorder codec (wire protocol
//!   v2's negotiated fast path, and the planned `xdx-store` snapshot
//!   format): encodes off the arena arrays, decodes by one bulk
//!   [`XmlTree::append_forest`] reservation, no recursion either way;
//! * [`limits`] — the shared document-size guard constants (byte, node and
//!   depth caps) enforced by both codecs and referenced by the server's
//!   frame caps and the `xdx-store` snapshot/WAL loader, so every admission
//!   layer agrees on a single notion of "too big";
//! * [`interner`] / [`compiled`] — the compiled fast path: dense `u32`
//!   symbol ids ([`Sym`]) and per-DTD dense-table DFAs plus occurrence-bound
//!   summaries ([`CompiledDtd`]), built once per DTD and used by every
//!   conformance check, chase step and ordering query. The NFA-simulation
//!   code remains as the differential-tested reference path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod compiled;
pub mod dtd;
pub mod interner;
pub mod lexer;
pub mod limits;
pub mod name;
pub mod text;
pub mod tree;
pub mod value;

pub use binary::{decode_tree, encode_tree, BinaryError, ByteSink};
pub use compiled::CompiledDtd;
pub use dtd::{ConformanceViolation, Dtd, DtdBuilder, DtdError};
pub use interner::{Interner, Sym};
pub use lexer::{Cursor, LexError};
pub use name::{AttrName, ElementType};
pub use text::{parse_tree, tree_to_text, TreeTextError};
pub use tree::{NodeId, Preorder, TreeBuilder, XmlTree};
pub use value::{NullGen, NullId, Value};
