//! Binary preorder document codec.
//!
//! The performance twin of [`crate::text`]: a length-prefixed binary frame
//! that encodes an [`XmlTree`] straight off the arena arrays and decodes by
//! one bulk [`XmlTree::append_forest`] reservation — no recursion in either
//! direction, no per-node allocation beyond the arena itself (names are
//! interned in a frame-local table and handed out as `Arc` clones). The text
//! codec remains the debugging/differential oracle; every frame produced
//! here must decode to a tree whose text form equals the original's.
//!
//! This is also the planned snapshot format of the future `xdx-store`
//! (ROADMAP item 2): serve from the compact binary image, verify with the
//! trusted text path.
//!
//! # Frame layout (format version 1)
//!
//! All integers are big-endian, matching the wire protocol.
//!
//! ```text
//! frame   := version:u8 (= 1)
//!            name_count:u32  name_count × name
//!            node_count:u32 (≥ 1)  node_count × node
//! name    := len:u32  utf8-bytes          -- shared by labels and attr names
//! node    := parent:u32  label:u32  attr_count:u16  attr_count × attr
//! attr    := name:u32  value
//! value   := 0x00 len:u32 utf8-bytes      -- constant
//!          | 0x01 id:u64                  -- null ⊥id
//! ```
//!
//! Nodes appear in preorder (document order); `parent` is the preorder slot
//! of the parent, which must be smaller than the node's own slot, except for
//! slot 0 (the root) whose `parent` is `u32::MAX`. Attributes are written in
//! the tree's canonical (sorted) order; the decoder accepts any order but
//! rejects duplicates.
//!
//! The decoder is **total**: arbitrary bytes produce a structured
//! [`BinaryError`], never a panic, and no length or count field is trusted
//! beyond the bytes actually present, so hostile frames cannot cause
//! oversized allocations.

use crate::limits::{MAX_DOCUMENT_BYTES, MAX_DOCUMENT_NODES};
use crate::name::{AttrName, ElementType};
use crate::tree::{NodeId, XmlTree};
use crate::value::{NullId, Value};
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Format version written and accepted by this module.
pub const FORMAT_VERSION: u8 = 1;

/// A sink for encoded bytes. Implemented by `Vec<u8>` and by the server's
/// chunked response writer, which cuts arbitrarily long `put`s into bounded
/// segments — the encoder never needs to know where segment boundaries fall.
pub trait ByteSink {
    /// Append `bytes` to the sink.
    fn put(&mut self, bytes: &[u8]);
}

impl ByteSink for Vec<u8> {
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// A decode failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryError {
    /// Byte offset in the frame at which the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl BinaryError {
    fn new(at: usize, message: impl Into<String>) -> BinaryError {
        BinaryError {
            at,
            message: message.into(),
        }
    }
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary tree frame, byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for BinaryError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// FNV-1a. Interning is the hot loop of the planning pass and names are
/// short, where FNV beats the default SipHash by a wide margin; the table is
/// frame-local and never fed attacker-controlled keys, so HashDoS hardening
/// buys nothing here.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type NameMap<'t> = HashMap<&'t str, u32, BuildHasherDefault<Fnv>>;

/// A planned encoding of one tree: the frame-local name table, the preorder
/// node list with parent slots, and every name use pre-resolved to its table
/// index — all computed in one traversal, so the write pass is a flat replay
/// that never hashes. Splitting the plan from the write lets callers learn
/// [`Encoder::encoded_len`] (e.g. to emit a length prefix) and then stream
/// the bytes without buffering the whole frame.
#[derive(Debug)]
pub struct Encoder<'t> {
    tree: &'t XmlTree,
    /// Distinct names (labels and attribute names) in first-use order.
    names: Vec<&'t str>,
    /// Reachable nodes in preorder; the write pass replays this list.
    order: Vec<NodeId>,
    /// Preorder parent slot of each node in `order` (`u32::MAX` for slot 0).
    parents: Vec<u32>,
    /// Interned name indices in emission order: each node's label followed
    /// by its attribute names.
    emit: Vec<u32>,
    len: usize,
}

fn intern<'t>(
    names: &mut Vec<&'t str>,
    name_idx: &mut NameMap<'t>,
    len: &mut usize,
    s: &'t str,
) -> u32 {
    *name_idx.entry(s).or_insert_with(|| {
        let idx = u32::try_from(names.len()).expect("name table exceeds u32::MAX entries");
        names.push(s);
        *len += 4 + s.len();
        idx
    })
}

impl<'t> Encoder<'t> {
    /// Plan the encoding of `tree` (one preorder pass; no bytes written yet).
    pub fn new(tree: &'t XmlTree) -> Encoder<'t> {
        let mut names = Vec::new();
        let mut name_idx = NameMap::default();
        let mut slots = vec![u32::MAX; tree.arena_len()];
        let mut order = Vec::new();
        let mut parents = Vec::new();
        let mut emit = Vec::new();
        // version + name_count + node_count
        let mut len = 1 + 4 + 4;
        for (slot, node) in tree.preorder().enumerate() {
            slots[node.index()] =
                u32::try_from(slot).expect("tree exceeds u32::MAX reachable nodes");
            order.push(node);
            parents.push(match tree.parent(node) {
                None => u32::MAX,
                Some(p) => slots[p.index()],
            });
            emit.push(intern(
                &mut names,
                &mut name_idx,
                &mut len,
                tree.label(node).as_str(),
            ));
            len += 4 + 4 + 2; // parent + label + attr_count
            for (name, value) in tree.attrs(node) {
                emit.push(intern(&mut names, &mut name_idx, &mut len, name.as_str()));
                len += 4 + 1; // name index + value tag
                len += match value {
                    Value::Const(s) => 4 + s.len(),
                    Value::Null(_) => 8,
                };
            }
        }
        Encoder {
            tree,
            names,
            order,
            parents,
            emit,
            len,
        }
    }

    /// Exact number of bytes [`Encoder::write_to`] will produce.
    pub fn encoded_len(&self) -> usize {
        self.len
    }

    /// Stream the frame into `sink` — a replay of the plan: fixed-width
    /// fields are batched into per-record stack buffers so each node costs a
    /// handful of `put`s and zero hash lookups.
    pub fn write_to(&self, sink: &mut impl ByteSink) {
        sink.put(&[FORMAT_VERSION]);
        sink.put(
            &u32::try_from(self.names.len())
                .expect("name table")
                .to_be_bytes(),
        );
        for s in &self.names {
            sink.put(
                &u32::try_from(s.len())
                    .expect("name exceeds u32::MAX bytes")
                    .to_be_bytes(),
            );
            sink.put(s.as_bytes());
        }
        sink.put(
            &u32::try_from(self.order.len())
                .expect("node count")
                .to_be_bytes(),
        );
        let mut emit = self.emit.iter();
        for (i, &node) in self.order.iter().enumerate() {
            let attrs = self.tree.attrs(node);
            let mut hdr = [0u8; 10];
            hdr[0..4].copy_from_slice(&self.parents[i].to_be_bytes());
            hdr[4..8].copy_from_slice(&emit.next().expect("plan covers every label").to_be_bytes());
            hdr[8..10].copy_from_slice(
                &u16::try_from(attrs.len())
                    .expect("attribute count exceeds u16::MAX")
                    .to_be_bytes(),
            );
            sink.put(&hdr);
            for value in attrs.values() {
                let name = emit.next().expect("plan covers every attribute name");
                match value {
                    Value::Const(s) => {
                        let mut rec = [0u8; 9];
                        rec[0..4].copy_from_slice(&name.to_be_bytes());
                        rec[4] = 0;
                        rec[5..9].copy_from_slice(
                            &u32::try_from(s.len())
                                .expect("value exceeds u32::MAX bytes")
                                .to_be_bytes(),
                        );
                        sink.put(&rec);
                        sink.put(s.as_bytes());
                    }
                    Value::Null(id) => {
                        let mut rec = [0u8; 13];
                        rec[0..4].copy_from_slice(&name.to_be_bytes());
                        rec[4] = 1;
                        rec[5..13].copy_from_slice(&id.0.to_be_bytes());
                        sink.put(&rec);
                    }
                }
            }
        }
    }
}

/// Encode `tree` into a fresh, exactly-sized buffer.
pub fn encode_tree(tree: &XmlTree) -> Vec<u8> {
    let enc = Encoder::new(tree);
    let mut out = Vec::with_capacity(enc.encoded_len());
    enc.write_to(&mut out);
    debug_assert_eq!(out.len(), enc.encoded_len());
    out
}

/// Exact encoded size of `tree` (one traversal; prefer keeping the
/// [`Encoder`] when you also need the bytes).
pub fn encoded_len(tree: &XmlTree) -> usize {
    Encoder::new(tree).encoded_len()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, message: impl Into<String>) -> BinaryError {
        BinaryError::new(self.pos, message)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinaryError> {
        if self.remaining() < n {
            return Err(self.err(format!("truncated: need {n} more bytes")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BinaryError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, BinaryError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, BinaryError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, BinaryError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn str(&mut self) -> Result<&'a str, BinaryError> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|_| BinaryError::new(at, "name/value is not valid UTF-8"))
    }
}

/// Per-role lazy name cache: one `Arc` allocation per distinct
/// (name, role) pair, reference-count bumps per use after that.
struct NameCache<'a, T> {
    raw: &'a [&'a str],
    built: Vec<Option<T>>,
}

impl<'a, T: Clone> NameCache<'a, T> {
    fn new(raw: &'a [&'a str]) -> NameCache<'a, T> {
        NameCache {
            raw,
            built: vec![None; raw.len()],
        }
    }

    fn get(&mut self, idx: u32, make: impl Fn(&str) -> T) -> Option<T> {
        let slot = self.built.get_mut(idx as usize)?;
        Some(
            slot.get_or_insert_with(|| make(self.raw[idx as usize]))
                .clone(),
        )
    }
}

/// Decode a version-1 binary frame back into a tree.
///
/// Total over arbitrary input; every count is validated against the bytes
/// actually present before any allocation is sized from it.
pub fn decode_tree(bytes: &[u8]) -> Result<XmlTree, BinaryError> {
    if bytes.len() > MAX_DOCUMENT_BYTES {
        return Err(BinaryError::new(
            0,
            format!(
                "frame of {} bytes exceeds the {MAX_DOCUMENT_BYTES}-byte document cap",
                bytes.len()
            ),
        ));
    }
    let mut r = Reader { buf: bytes, pos: 0 };

    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(BinaryError::new(
            0,
            format!("unsupported format version {version}"),
        ));
    }

    // Name table: each entry takes at least 4 bytes.
    let name_count = r.u32()? as usize;
    if name_count > r.remaining() / 4 {
        return Err(r.err(format!("name count {name_count} exceeds the payload")));
    }
    let mut raw_names = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        raw_names.push(r.str()?);
    }
    let mut labels: NameCache<'_, ElementType> = NameCache::new(&raw_names);
    let mut attr_names: NameCache<'_, AttrName> = NameCache::new(&raw_names);

    // Nodes: each record takes at least 10 bytes (parent + label + count).
    let node_count = r.u32()? as usize;
    if node_count == 0 {
        return Err(r.err("node count is zero (a tree has at least its root)"));
    }
    if node_count > r.remaining() / 10 + 1 {
        return Err(r.err(format!("node count {node_count} exceeds the payload")));
    }
    if node_count > MAX_DOCUMENT_NODES {
        return Err(r.err(format!(
            "node count {node_count} exceeds the {MAX_DOCUMENT_NODES}-node document cap"
        )));
    }

    let mut tree: Option<XmlTree> = None;
    // Preorder forest below the root, in `append_forest` coordinates:
    // slot i of the frame is entry i-1 here, parents are rebased the same
    // way with the root (frame slot 0) mapped to the u32::MAX marker.
    let mut forest: Vec<(u32, ElementType)> = Vec::with_capacity(node_count - 1);
    // (frame slot, name, value) — applied after the bulk reservation.
    // Capacity heuristic: an attribute record is ≥ 9 bytes, so the tail of
    // the payload bounds how many can follow (no trust in count fields).
    let mut pending_attrs: Vec<(usize, AttrName, Value)> =
        Vec::with_capacity((r.remaining() / 9).min(4096));

    for slot in 0..node_count {
        let at = r.pos;
        let parent = r.u32()?;
        if slot == 0 && parent != u32::MAX {
            return Err(BinaryError::new(
                at,
                "slot 0 (the root) must have parent 0xffffffff",
            ));
        }
        if slot > 0 && parent as usize >= slot {
            return Err(BinaryError::new(
                at,
                format!("slot {slot} references parent {parent}, which is not an earlier slot"),
            ));
        }
        let at = r.pos;
        let label_idx = r.u32()?;
        let label = labels
            .get(label_idx, |s| ElementType::new(s))
            .ok_or_else(|| BinaryError::new(at, format!("label index {label_idx} out of range")))?;
        if slot == 0 {
            tree = Some(XmlTree::new(label));
        } else {
            let rebased = if parent == 0 { u32::MAX } else { parent - 1 };
            forest.push((rebased, label));
        }
        let attr_count = r.u16()? as usize;
        if attr_count > r.remaining() / 5 + 1 {
            return Err(r.err(format!("attribute count {attr_count} exceeds the payload")));
        }
        for _ in 0..attr_count {
            let at = r.pos;
            let name_idx = r.u32()?;
            let name = attr_names
                .get(name_idx, |s| AttrName::new(s))
                .ok_or_else(|| {
                    BinaryError::new(at, format!("attribute name index {name_idx} out of range"))
                })?;
            let value = match r.u8()? {
                0 => Value::constant(r.str()?),
                1 => Value::Null(NullId(r.u64()?)),
                t => return Err(r.err(format!("unknown value tag {t}"))),
            };
            pending_attrs.push((slot, name, value));
        }
    }
    if r.pos != r.buf.len() {
        return Err(r.err(format!("{} trailing bytes after the frame", r.remaining())));
    }

    let mut tree = tree.expect("slot 0 always builds the root");
    let root = tree.root();
    // One bulk arena reservation for everything below the root; frame slot
    // i (> 0) becomes arena index base + i - 1.
    let base = tree
        .append_forest(root, &forest)
        .map(NodeId::index)
        .unwrap_or(1);
    // Attributes arrive grouped by slot, so each run of a node's attributes
    // pays the node lookup once and each entry exactly one map probe.
    let mut pending = pending_attrs.into_iter().peekable();
    while let Some((slot, name, value)) = pending.next() {
        let node = if slot == 0 {
            root
        } else {
            NodeId::from_index(base + slot - 1)
        };
        let attrs = tree.attrs_mut(node);
        let mut put = |name: AttrName, value: Value| match attrs.entry(name) {
            std::collections::btree_map::Entry::Occupied(e) => Err(BinaryError::new(
                bytes.len(),
                format!("slot {slot} carries attribute {} twice", e.key()),
            )),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(value);
                Ok(())
            }
        };
        put(name, value)?;
        while let Some((s, _, _)) = pending.peek() {
            if *s != slot {
                break;
            }
            let (_, name, value) = pending.next().expect("peeked");
            put(name, value)?;
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{parse_tree, tree_to_text};
    use crate::tree::TreeBuilder;

    fn sample_tree() -> XmlTree {
        let mut t = TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "Combinatorial Optimization")
                    .child("author", |a| {
                        a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                    })
                    .child("author", |a| {
                        a.attr("@name", "Steiglitz").attr("@aff", "Princeton")
                    })
            })
            .child("weird \"name\"\\", |b| b.attr("@⊥", "⊥ is just text here"))
            .build();
        let root = t.root();
        t.set_attr(root, "@year", Value::Null(NullId(7)));
        t.set_attr(root, "@max", Value::Null(NullId(u64::MAX)));
        t
    }

    #[test]
    fn round_trips_and_matches_text_oracle() {
        let t = sample_tree();
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        back.validate().unwrap();
        assert_eq!(tree_to_text(&back), tree_to_text(&t));
        assert_eq!(back.ordered_canonical_form(), t.ordered_canonical_form());
        // Nulls survive with their exact ids, not just anonymised.
        assert_eq!(
            back.attr(back.root(), &"@max".into()),
            Some(&Value::Null(NullId(u64::MAX)))
        );
    }

    #[test]
    fn single_node_tree_round_trips() {
        let t = XmlTree::new("r");
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(back.size(), 1);
        assert_eq!(back.label(back.root()).as_str(), "r");
    }

    #[test]
    fn encoded_len_is_exact() {
        for t in [XmlTree::new("r"), sample_tree()] {
            let enc = Encoder::new(&t);
            let mut out = Vec::new();
            enc.write_to(&mut out);
            assert_eq!(out.len(), enc.encoded_len());
            assert_eq!(encoded_len(&t), out.len());
        }
    }

    #[test]
    fn detached_nodes_are_not_encoded() {
        let mut t = XmlTree::new("r");
        t.add_child(t.root(), "kept");
        t.new_detached("ghost");
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(back.size(), 2);
        assert_eq!(back.arena_len(), 2);
    }

    #[test]
    fn deep_chain_has_no_recursion_limit() {
        let mut t = XmlTree::new("r");
        let mut cur = t.root();
        for _ in 0..100_000 {
            cur = t.add_child(cur, "d");
        }
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        assert_eq!(back.size(), 100_001);
        assert_eq!(tree_to_text(&back), tree_to_text(&t));
    }

    #[test]
    fn name_table_is_shared_and_interned() {
        // 1000 nodes, one distinct label: the table holds it once and the
        // decoded tree shares one allocation for all of them.
        let mut t = XmlTree::new("n");
        for _ in 0..999 {
            t.add_child(t.root(), "n");
        }
        let bytes = encode_tree(&t);
        assert!(
            bytes.len() < 1000 * 12 + 64,
            "labels must not repeat per node"
        );
        let back = decode_tree(&bytes).unwrap();
        let ids: Vec<_> = back.nodes();
        assert!(std::ptr::eq(
            back.label(ids[1]).as_str(),
            back.label(ids[999]).as_str()
        ));
    }

    #[test]
    fn cross_codec_agrees_with_text_parser() {
        let text = "db[book(@title=\"T \\\"q\\\"\")[author(@name=⊥3)],book(@title=\"U\")]";
        let t = parse_tree(text).unwrap();
        let back = decode_tree(&encode_tree(&t)).unwrap();
        assert_eq!(tree_to_text(&back), tree_to_text(&t));
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = encode_tree(&sample_tree());
        for cut in 0..bytes.len() {
            assert!(decode_tree(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corruptions_never_panic() {
        let bytes = encode_tree(&sample_tree());
        for at in 0..bytes.len() {
            for bit in [1u8, 0x80] {
                let mut b = bytes.clone();
                b[at] ^= bit;
                // Must not panic; may decode to some other valid tree.
                let _ = decode_tree(&b);
            }
        }
    }

    #[test]
    fn hostile_counts_do_not_overallocate() {
        // node_count u32::MAX with an empty body.
        let mut b = vec![FORMAT_VERSION];
        b.extend_from_slice(&0u32.to_be_bytes()); // no names
        b.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd node count
        let err = decode_tree(&b).unwrap_err();
        assert!(err.message.contains("exceeds the payload"), "{err}");

        // name_count u32::MAX likewise.
        let mut b = vec![FORMAT_VERSION];
        b.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = decode_tree(&b).unwrap_err();
        assert!(err.message.contains("exceeds the payload"), "{err}");
    }

    #[test]
    fn structural_errors_are_reported() {
        // Unsupported version.
        assert!(decode_tree(&[9]).unwrap_err().message.contains("version"));
        // Zero nodes.
        let mut b = vec![FORMAT_VERSION];
        b.extend_from_slice(&0u32.to_be_bytes());
        b.extend_from_slice(&0u32.to_be_bytes());
        assert!(decode_tree(&b)
            .unwrap_err()
            .message
            .contains("node count is zero"));
        // Root with a real parent slot.
        let mut b = vec![FORMAT_VERSION];
        b.extend_from_slice(&1u32.to_be_bytes());
        b.extend_from_slice(&1u32.to_be_bytes());
        b.push(b'r');
        b.extend_from_slice(&1u32.to_be_bytes()); // one node
        b.extend_from_slice(&0u32.to_be_bytes()); // parent 0 (invalid for root)
        b.extend_from_slice(&0u32.to_be_bytes());
        b.extend_from_slice(&0u16.to_be_bytes());
        assert!(decode_tree(&b).unwrap_err().message.contains("slot 0"));
        // Forward parent reference.
        let t = {
            let mut t = XmlTree::new("r");
            t.add_child(t.root(), "c");
            t
        };
        let mut bytes = encode_tree(&t);
        let parent_field = bytes.len() - (4 + 4 + 2); // second node's parent
        bytes[parent_field..parent_field + 4].copy_from_slice(&5u32.to_be_bytes());
        assert!(decode_tree(&bytes)
            .unwrap_err()
            .message
            .contains("not an earlier slot"));
        // Duplicate attribute (encode once, then duplicate the record).
        let mut t = XmlTree::new("r");
        let root = t.root();
        t.set_attr(root, "@a", "v");
        let mut bytes = encode_tree(&t);
        let attr_record_len = 4 + 1 + 4 + 1; // name + tag + len + "v"
        let record_start = bytes.len() - attr_record_len;
        let record = bytes[record_start..].to_vec();
        bytes.extend_from_slice(&record);
        let count_at = record_start - 2;
        bytes[count_at..record_start].copy_from_slice(&2u16.to_be_bytes());
        assert!(decode_tree(&bytes).unwrap_err().message.contains("twice"));
        // Trailing garbage.
        let mut bytes = encode_tree(&t);
        bytes.push(0);
        assert!(decode_tree(&bytes)
            .unwrap_err()
            .message
            .contains("trailing"));
    }
}
