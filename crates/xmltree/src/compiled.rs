//! Compiled DTDs: dense-table DFAs over interned symbols.
//!
//! [`Dtd`]'s reference conformance path re-simulates a generic
//! `Nfa<ElementType>` per node, allocating `BTreeSet<StateId>` state sets and
//! doing string-keyed `BTreeMap` lookups for every child label. A
//! [`CompiledDtd`] is built **once** per DTD and replaces all of that with:
//!
//! * a per-DTD [`Interner`] mapping element types and attribute names to
//!   dense `u32` [`Sym`] ids;
//! * per-rule **dense transition tables** (`states × alphabet` flat `Vec<u32>`
//!   with an explicit dead state), so the ordered check `T ⊨ D` is one array
//!   index per child;
//! * per-rule **occurrence bounds** for nested-relational-shaped content
//!   models (`ℓ̃_1 … ℓ̃_m`, Section 4): the unordered check `T |≈ D`
//!   becomes a counts-within-bounds comparison instead of a permutation
//!   search, falling back to the memoised bitset search
//!   ([`BitsetNfa::perm_accepts`]) for general expressions;
//! * a pre-built [`BitsetNfa`] per rule for the chase / sibling-ordering
//!   fast paths.
//!
//! The reference path is kept (`Dtd::violations_reference` and friends) and
//! the two are differential-tested against each other.

use crate::dtd::{ConformanceViolation, Dtd};
use crate::interner::{Interner, Sym};
use crate::name::{AttrName, ElementType};
use crate::tree::XmlTree;
use std::sync::Mutex;
use xdx_relang::{BitsetNfa, Multiplicity, PermMemo};

/// How a rule's unordered (permutation-language) membership is decided.
#[derive(Debug, Clone)]
enum UnorderedCheck {
    /// Nested-relational shape `ℓ̃_1 … ℓ̃_m`: `counts ∈ π(r)` iff every
    /// symbol's count lies within its `(min, max)` bound and no other symbol
    /// occurs. Sparse, sorted by symbol id (`u64::MAX` = unbounded), so
    /// storage is proportional to the rule, not to the whole DTD alphabet.
    Bounds(Vec<(Sym, u64, u64)>),
    /// General expression: memoised counting search on the bitset NFA,
    /// through the rule's shared warm memo (only general rules carry one).
    General { memo: SharedPermMemo },
}

/// How a rule's ordered (string-language) membership is decided.
#[derive(Debug, Clone)]
enum OrderedCheck {
    /// Dense subset-construction DFA: one array index per child. Column `j`
    /// of the flat `num_states × local_syms.len()` table belongs to
    /// `local_syms[j]`.
    Table {
        table: Vec<u32>,
        accepting: Vec<bool>,
        start: u32,
    },
    /// Content models whose DFA would be too large to determinize eagerly
    /// (wide flat schemas): bit-parallel NFA simulation instead, with
    /// symbols mapped through the rule's `bitset_cols`.
    NfaSim,
}

/// Above this many memoised subproblems a rule's shared permutation memo is
/// reset before the next query. Long-lived compiled DTDs (a `BatchEngine`
/// validating a stream of documents) would otherwise grow the table
/// monotonically with every distinct child multiset ever seen; entries are a
/// pure cache, so dropping them only costs re-derivation.
const MAX_SHARED_PERM_MEMO: usize = 1 << 18;

/// A per-rule permutation-search memo behind a `Mutex`, so the (immutable,
/// `Send + Sync`) compiled DTD can warm it across nodes, trees and threads.
/// Queries `try_lock` and fall back to a fresh local memo when contended
/// (the counting search may be long, so the lock is never worth waiting
/// for), and the table self-resets at [`MAX_SHARED_PERM_MEMO`] entries.
#[derive(Debug)]
struct SharedPermMemo(Mutex<PermMemo>);

impl SharedPermMemo {
    fn new(memo: PermMemo) -> Self {
        SharedPermMemo(Mutex::new(memo))
    }
}

impl Clone for SharedPermMemo {
    fn clone(&self) -> Self {
        // Keeps the automaton-specific key encoding (and any warm entries —
        // they are a pure cache, so copying them is sound).
        SharedPermMemo::new(self.0.lock().expect("perm memo poisoned").clone())
    }
}

/// One compiled content-model rule.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The rule's alphabet as dense symbol ids, sorted. Keeping per-rule
    /// structures at the *rule's* alphabet width (instead of the whole
    /// DTD's) keeps memory proportional to the total size of the content
    /// models.
    local_syms: Vec<Sym>,
    /// `bitset_cols[j]`: the bitset-NFA alphabet index of `local_syms[j]`.
    bitset_cols: Vec<u32>,
    /// Ordered-membership strategy (symbols outside `local_syms` reject
    /// immediately at lookup time in either variant).
    ordered: OrderedCheck,
    /// Allowed/required attributes, sorted by name.
    attrs: Vec<AttrName>,
    /// Unordered-membership strategy.
    unordered: UnorderedCheck,
    /// Bit-parallel NFA for permutation and ordering queries.
    bitset: BitsetNfa<ElementType>,
}

impl CompiledRule {
    /// Run the compiled recogniser over interned children; a child symbol
    /// outside the rule's alphabet rejects immediately.
    fn matches_syms(&self, children: &[Sym]) -> bool {
        let width = self.local_syms.len();
        match &self.ordered {
            OrderedCheck::Table {
                table,
                accepting,
                start,
            } => {
                let mut q = *start as usize;
                for s in children {
                    match self.local_syms.binary_search(s) {
                        Ok(j) => q = table[q * width + j] as usize,
                        Err(_) => return false,
                    }
                }
                accepting[q]
            }
            OrderedCheck::NfaSim => {
                let mut current = self.bitset.start_mask().clone();
                let mut next = crate::compiled::empty_mask_like(&self.bitset);
                for s in children {
                    let Ok(j) = self.local_syms.binary_search(s) else {
                        return false;
                    };
                    if current.is_empty() {
                        return false;
                    }
                    self.bitset
                        .step_mask_into(&current, self.bitset_cols[j] as usize, &mut next);
                    std::mem::swap(&mut current, &mut next);
                }
                self.bitset.accepts(&current)
            }
        }
    }
}

/// An empty state mask sized for `nfa` (helper for the simulation variant).
fn empty_mask_like(nfa: &BitsetNfa<ElementType>) -> xdx_relang::StateMask {
    xdx_relang::StateMask::empty(nfa.num_states())
}

/// Above this many transition-table cells (`DFA states × alphabet`) the
/// eager subset construction bails out in favour of bit-parallel NFA
/// simulation. The bound is enforced on the *output* DFA while it is being
/// built ([`BitsetNfa::to_dfa_capped`]): subset construction is worst-case
/// exponential in NFA states (`(a|b)* a (a|b)^n`), and wide flat content
/// models (`e0* e1* … e511*`) are quadratic-plus in the alphabet, so no
/// pre-check of the NFA's size can be trusted.
const MAX_EAGER_DFA_WORK: usize = 1 << 16;

/// A [`Dtd`] compiled for repeated evaluation (see the module docs).
#[derive(Debug, Clone)]
pub struct CompiledDtd {
    root: Sym,
    elements: Interner<ElementType>,
    attr_names: Interner<AttrName>,
    /// Rules indexed by element symbol id.
    rules: Vec<CompiledRule>,
}

impl CompiledDtd {
    /// Compile `dtd`. Cost is linear in the total size of the per-rule DFAs;
    /// every subsequent conformance query is allocation-free per node.
    pub fn new(dtd: &Dtd) -> Self {
        let mut elements: Interner<ElementType> = Interner::new();
        let mut attr_names: Interner<AttrName> = Interner::new();
        // Dense ids for every element type first.
        for el in dtd.element_types() {
            elements.intern(el);
        }
        let root = elements.intern(dtd.root());
        let num_syms = elements.len();

        let mut rules = Vec::with_capacity(num_syms);
        for i in 0..num_syms {
            let el = elements.names()[i].clone();
            let nfa = dtd
                .content_nfa(&el)
                .expect("every interned element type has a rule");
            let bitset = BitsetNfa::from_nfa(nfa);
            // Re-order the rule's alphabet (sorted by element type) into
            // symbol-id order so lookups can binary-search `local_syms`.
            let mut col_syms: Vec<(Sym, usize)> = nfa
                .alphabet()
                .iter()
                .enumerate()
                .map(|(j, e)| {
                    let sym = elements
                        .get(e)
                        .expect("rule alphabets are subsets of the DTD's element types");
                    (sym, j)
                })
                .collect();
            col_syms.sort();
            let local_syms: Vec<Sym> = col_syms.iter().map(|&(sym, _)| sym).collect();
            let bitset_cols: Vec<u32> = col_syms.iter().map(|&(_, old_j)| old_j as u32).collect();
            let width = local_syms.len();
            let ordered = match bitset.to_dfa_capped(MAX_EAGER_DFA_WORK) {
                Some(dfa) => {
                    let n_states = dfa.num_states();
                    let mut table = vec![0u32; n_states * width];
                    for (q, row) in dfa.table().iter().enumerate() {
                        for (new_j, &(_, old_j)) in col_syms.iter().enumerate() {
                            table[q * width + new_j] = row[old_j] as u32;
                        }
                    }
                    OrderedCheck::Table {
                        table,
                        accepting: (0..n_states).map(|q| dfa.is_accepting(q)).collect(),
                        start: dfa.start() as u32,
                    }
                }
                None => OrderedCheck::NfaSim,
            };

            let regex = dtd.rule(&el);
            let unordered = match regex.nested_relational_factors() {
                Some(factors) => {
                    let mut bounds: Vec<(Sym, u64, u64)> = Vec::with_capacity(factors.len());
                    let mut well_formed = true;
                    for f in &factors {
                        let Some(sym) = elements.get(&f.symbol) else {
                            well_formed = false;
                            break;
                        };
                        let max = match f.multiplicity {
                            Multiplicity::One | Multiplicity::Optional => 1,
                            Multiplicity::Plus | Multiplicity::Star => u64::MAX,
                        };
                        bounds.push((sym, f.multiplicity.min() as u64, max));
                    }
                    bounds.sort();
                    if well_formed && bounds.windows(2).all(|w| w[0].0 != w[1].0) {
                        UnorderedCheck::Bounds(bounds)
                    } else {
                        // Repeated symbols are not the paper's nested-
                        // relational shape; fall back to the general check.
                        UnorderedCheck::General {
                            memo: SharedPermMemo::new(bitset.perm_memo()),
                        }
                    }
                }
                None => UnorderedCheck::General {
                    memo: SharedPermMemo::new(bitset.perm_memo()),
                },
            };

            let mut attrs: Vec<AttrName> = dtd.attrs_of(&el).into_iter().collect();
            attrs.sort();
            for a in &attrs {
                attr_names.intern(a);
            }

            rules.push(CompiledRule {
                local_syms,
                bitset_cols,
                ordered,
                attrs,
                unordered,
                bitset,
            });
        }
        CompiledDtd {
            root,
            elements,
            attr_names,
            rules,
        }
    }

    /// The root element's symbol.
    pub fn root_sym(&self) -> Sym {
        self.root
    }

    /// The element-type interner.
    pub fn elements(&self) -> &Interner<ElementType> {
        &self.elements
    }

    /// The attribute-name interner.
    pub fn attr_names(&self) -> &Interner<AttrName> {
        &self.attr_names
    }

    /// Dense id of an element type, if the DTD declares it.
    #[inline]
    pub fn sym(&self, element: &ElementType) -> Option<Sym> {
        self.elements.get(element)
    }

    /// The element type behind a symbol.
    #[inline]
    pub fn element(&self, sym: Sym) -> &ElementType {
        self.elements.resolve(sym)
    }

    /// Number of element types.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Sorted allowed/required attributes of an element.
    #[inline]
    pub fn attrs(&self, sym: Sym) -> &[AttrName] {
        &self.rules[sym.index()].attrs
    }

    /// The pre-built bit-parallel NFA of an element's content model.
    #[inline]
    pub fn bitset_nfa(&self, sym: Sym) -> &BitsetNfa<ElementType> {
        &self.rules[sym.index()].bitset
    }

    /// Ordered membership: is the interned child sequence in the content
    /// model language?
    #[inline]
    pub fn matches_children(&self, parent: Sym, children: &[Sym]) -> bool {
        self.rules[parent.index()].matches_syms(children)
    }

    /// Unordered membership: is the child multiset in the permutation
    /// language of the content model?
    ///
    /// `counts` is sparse — `(symbol, count)` pairs sorted by symbol with
    /// every count positive (see [`sparse_counts`]). Children with labels
    /// outside the DTD make conformance false before this is called.
    pub fn perm_accepts_counts(&self, parent: Sym, counts: &[(Sym, u64)]) -> bool {
        debug_assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(counts.iter().all(|&(_, c)| c > 0));
        let rule = &self.rules[parent.index()];
        match &rule.unordered {
            UnorderedCheck::Bounds(bounds) => {
                // Merge-walk the two sorted lists: every counted symbol must
                // have a bound, and every bound must be met (a symbol absent
                // from `counts` has count 0, which must satisfy `min`).
                let mut ci = 0;
                for &(sym, min, max) in bounds {
                    if ci < counts.len() && counts[ci].0 < sym {
                        return false; // counted symbol with no bound
                    }
                    let c = if ci < counts.len() && counts[ci].0 == sym {
                        ci += 1;
                        counts[ci - 1].1
                    } else {
                        0
                    };
                    if c < min || c > max {
                        return false;
                    }
                }
                ci == counts.len()
            }
            UnorderedCheck::General { memo } => {
                // Straight from sparse `Sym` counts to the bitset NFA's
                // alphabet indexing — no `BTreeMap<ElementType, u64>`
                // transcription — and through the rule's warm `PermMemo`
                // (shared across nodes, trees and threads), mirroring what
                // `core::ordering::SiblingOrderMemo` does for the ordering
                // path. The old path (`bitset_nfa(sym).perm_accepts`) stays
                // available and the two are differential-tested.
                let mut vec_counts = vec![0u64; rule.bitset.alphabet().len()];
                for &(sym, count) in counts {
                    match rule.local_syms.binary_search(&sym) {
                        Ok(j) => vec_counts[rule.bitset_cols[j] as usize] = count,
                        // A counted symbol outside the rule's alphabet can
                        // never be consumed.
                        Err(_) => return false,
                    }
                }
                // The shared memo is only borrowed when free: the counting
                // search can be long (worst-case exponential in the multiset),
                // so holding the lock across it would serialize batch workers
                // hitting the same rule. A contended caller searches on a
                // fresh local memo instead — slower for that one query, never
                // blocking.
                match memo.0.try_lock() {
                    Ok(mut shared) => {
                        if shared.len() > MAX_SHARED_PERM_MEMO {
                            shared.clear();
                        }
                        rule.bitset.perm_accepts_counts_memo(
                            rule.bitset.start_mask(),
                            &mut vec_counts,
                            &mut shared,
                        )
                    }
                    Err(_) => {
                        let mut local = rule.bitset.perm_memo();
                        rule.bitset.perm_accepts_counts_memo(
                            rule.bitset.start_mask(),
                            &mut vec_counts,
                            &mut local,
                        )
                    }
                }
            }
        }
    }

    /// Intern every node label of `tree`, indexed by `NodeId::index()`.
    /// Unknown labels come back as `None`.
    pub fn intern_tree(&self, tree: &XmlTree) -> Vec<Option<Sym>> {
        let mut out = vec![None; tree.arena_len()];
        for node in tree.nodes() {
            out[node.index()] = self.elements.get(tree.label(node));
        }
        out
    }

    /// Ordered conformance `T ⊨ D` (fast path; bails on the first
    /// violation).
    pub fn conforms(&self, tree: &XmlTree) -> bool {
        self.check(tree, true, None)
    }

    /// Unordered (weak) conformance `T |≈ D` (fast path).
    pub fn conforms_unordered(&self, tree: &XmlTree) -> bool {
        self.check(tree, false, None)
    }

    /// All conformance violations (fast path used by [`Dtd::violations`]).
    pub fn violations(&self, tree: &XmlTree, ordered: bool) -> Vec<ConformanceViolation> {
        let mut out = Vec::new();
        self.check(tree, ordered, Some(&mut out));
        out
    }

    /// Shared checking loop. With `collect` absent, returns on the first
    /// violation; with it present, records every violation (matching the
    /// reference `Dtd::violations_reference` output order).
    fn check(
        &self,
        tree: &XmlTree,
        ordered: bool,
        mut collect: Option<&mut Vec<ConformanceViolation>>,
    ) -> bool {
        let mut ok = true;
        macro_rules! violation {
            ($v:expr) => {{
                ok = false;
                match collect.as_deref_mut() {
                    Some(out) => out.push($v),
                    None => return false,
                }
            }};
        }

        let root_label = tree.label(tree.root());
        let expected_root = self.elements.resolve(self.root);
        if root_label != expected_root {
            violation!(ConformanceViolation::RootLabel {
                found: root_label.clone(),
                expected: expected_root.clone(),
            });
        }

        let mut child_syms: Vec<Sym> = Vec::new();
        let mut counts: Vec<(Sym, u64)> = Vec::new();
        for node in tree.nodes() {
            let label = tree.label(node);
            let Some(sym) = self.elements.get(label) else {
                violation!(ConformanceViolation::UnknownElementType {
                    node,
                    label: label.clone(),
                });
                continue;
            };
            let rule = &self.rules[sym.index()];

            // Attribute conditions: ρ@a(v) defined iff @a ∈ R(ℓ).
            let node_attrs = tree.attrs(node);
            for attr in node_attrs.keys() {
                if rule.attrs.binary_search(attr).is_err() {
                    violation!(ConformanceViolation::UnexpectedAttribute {
                        node,
                        attr: attr.clone(),
                    });
                }
            }
            for attr in &rule.attrs {
                if !node_attrs.contains_key(attr) {
                    violation!(ConformanceViolation::MissingAttribute {
                        node,
                        attr: attr.clone(),
                    });
                }
            }

            // Content-model condition over interned children.
            child_syms.clear();
            let mut known_children = true;
            for &c in tree.children(node) {
                match self.elements.get(tree.label(c)) {
                    Some(s) => child_syms.push(s),
                    None => {
                        known_children = false;
                        break;
                    }
                }
            }
            let content_ok = known_children
                && if ordered {
                    rule.matches_syms(&child_syms)
                } else {
                    sparse_counts(&mut child_syms, &mut counts);
                    self.perm_accepts_counts(sym, &counts)
                };
            if !content_ok {
                violation!(ConformanceViolation::ContentModel {
                    node,
                    label: label.clone(),
                    children: tree
                        .children(node)
                        .iter()
                        .map(|&c| tree.label(c).clone())
                        .collect(),
                });
            }
        }
        ok
    }
}

// Compile-time audit: compiled DTDs (and everything inside them — interners,
// dense tables, bitset NFAs) are shared across threads by `xdx-core`'s
// `CompiledSetting`/`BatchEngine`; this must keep compiling.
#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<CompiledDtd>();
    check::<CompiledRule>();
    check::<Interner<ElementType>>();
    check::<crate::dtd::Dtd>();
    check::<XmlTree>();
}

/// Run-length encode a multiset of symbols into sorted `(symbol, count)`
/// pairs (the sparse format [`CompiledDtd::perm_accepts_counts`] consumes).
/// Sorts `syms` in place; `out` is cleared and refilled.
pub fn sparse_counts(syms: &mut [Sym], out: &mut Vec<(Sym, u64)>) {
    out.clear();
    syms.sort_unstable();
    for &s in syms.iter() {
        match out.last_mut() {
            Some((prev, c)) if *prev == s => *c += 1,
            _ => out.push((s, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn source_dtd() -> Dtd {
        Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .rule("author", "eps")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_agrees_on_the_running_example() {
        let d = source_dtd();
        let t = TreeBuilder::new("db")
            .child("book", |b| {
                b.attr("@title", "CO")
                    .child("author", |a| a.attr("@name", "P").attr("@aff", "U"))
            })
            .build();
        let c = d.compiled();
        assert!(c.conforms(&t));
        assert!(c.conforms_unordered(&t));
        assert_eq!(d.conforms_reference(&t), c.conforms(&t));
    }

    #[test]
    fn compiled_violations_match_reference() {
        let d = source_dtd();
        // A tree with every kind of violation at once.
        let mut t = crate::tree::XmlTree::new("bib");
        let b = t.add_child(t.root(), "book");
        t.set_attr(b, "@isbn", "123");
        t.add_child(t.root(), "journal");
        let fast = d.compiled().violations(&t, true);
        let reference = d.violations_reference(&t);
        assert_eq!(fast, reference);
    }

    #[test]
    fn bounds_fast_path_matches_general_on_nested_relational_rules() {
        // r → a? b+ c* d is nested-relational: the unordered check must use
        // bounds and agree with the bitset permutation search.
        let d = Dtd::builder("r").rule("r", "a? b+ c* d").build().unwrap();
        let c = d.compiled();
        let r = c.sym(&"r".into()).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let counts: Vec<(Sym, u64)> = (0..c.num_elements())
                .map(|i| (Sym::from_index(i), rng.gen_range(0u64..3)))
                .filter(|&(_, n)| n > 0)
                .collect();
            let fast = c.perm_accepts_counts(r, &counts);
            let map: BTreeMap<ElementType, u64> = counts
                .iter()
                .map(|&(sym, n)| (c.elements().names()[sym.index()].clone(), n))
                .collect();
            // Root count must be zero for a valid child multiset; the
            // general path rejects it, bounds must too.
            let general = c.bitset_nfa(r).perm_accepts(&map);
            assert_eq!(fast, general, "counts {counts:?}");
        }
    }

    #[test]
    fn general_fallback_memo_matches_btreemap_path_on_chase_heavy_rules() {
        // Chase-heavy shapes outside the nested-relational class: the
        // memoised per-rule fallback must agree query-for-query with the
        // old `BTreeMap<ElementType, u64>` transcription through
        // `BitsetNfa::perm_accepts` — including queries that *repeat*
        // (warm memo) and counted symbols outside the rule's alphabet.
        for model in ["(a b)* (c d)*", "(a b c)*", "(a|b b)* c?", "a (b|c)* a"] {
            let d = Dtd::builder("r")
                .rule("r", model)
                .rule("a", "eps")
                .rule("b", "eps")
                .rule("c", "eps")
                .rule("d", "eps")
                .build()
                .unwrap();
            let c = d.compiled();
            let r = c.sym(&"r".into()).unwrap();
            assert!(
                matches!(c.rules[r.index()].unordered, UnorderedCheck::General { .. }),
                "{model} must take the general fallback"
            );
            let mut rng = StdRng::seed_from_u64(7);
            for round in 0..300 {
                let counts: Vec<(Sym, u64)> = (0..c.num_elements())
                    .map(|i| (Sym::from_index(i), rng.gen_range(0u64..4)))
                    .filter(|&(_, n)| n > 0)
                    .collect();
                let fast = c.perm_accepts_counts(r, &counts);
                let map: BTreeMap<ElementType, u64> = counts
                    .iter()
                    .map(|&(sym, n)| (c.elements().names()[sym.index()].clone(), n))
                    .collect();
                let reference = c.bitset_nfa(r).perm_accepts(&map);
                assert_eq!(fast, reference, "{model} round {round} counts {counts:?}");
                // Re-ask immediately: the warm memo must not flip the answer.
                assert_eq!(c.perm_accepts_counts(r, &counts), reference);
            }
        }
    }

    #[test]
    fn general_fallback_on_non_nested_relational_rules() {
        let d = Dtd::builder("r").rule("r", "(a b)*").build().unwrap();
        let c = d.compiled();
        let t_ok = TreeBuilder::new("r").leaf("b").leaf("a").build();
        assert!(!c.conforms(&t_ok));
        assert!(c.conforms_unordered(&t_ok));
        let t_bad = TreeBuilder::new("r").leaf("a").leaf("a").build();
        assert!(!c.conforms_unordered(&t_bad));
    }

    #[test]
    fn wide_content_models_fall_back_to_nfa_simulation() {
        // A 300-field flat record: the root rule's DFA (k+1 states × k
        // symbols) exceeds MAX_EAGER_DFA_WORK table cells, so the ordered
        // check must run on the bit-parallel simulation — and still agree
        // with the reference path.
        let k = 300usize;
        let mut b = Dtd::builder("r").rule(
            "r",
            &(0..k)
                .map(|i| format!("e{i}*"))
                .collect::<Vec<_>>()
                .join(" "),
        );
        for i in 0..k {
            b = b.rule(format!("e{i}"), "eps");
        }
        let dtd = b.build().unwrap();
        let c = dtd.compiled();
        let r = c.sym(&"r".into()).unwrap();
        assert!(matches!(c.rules[r.index()].ordered, OrderedCheck::NfaSim));
        let mut t = crate::tree::XmlTree::new("r");
        for i in 0..k {
            t.add_child(t.root(), format!("e{i}"));
            t.add_child(t.root(), format!("e{i}"));
        }
        assert!(c.conforms(&t));
        assert!(dtd.conforms_reference(&t));
        // The compiled unordered check runs on the sparse bounds (the
        // reference permutation search is too slow at this width to compare
        // against in a unit test).
        assert!(c.conforms_unordered(&t));
        // Swap two children out of field order: ordered fails, unordered
        // holds.
        let kids: Vec<_> = t.children(t.root()).to_vec();
        let mut order = kids.clone();
        order.swap(0, kids.len() - 1);
        t.set_child_order(t.root(), order);
        assert!(!c.conforms(&t));
        assert!(!dtd.conforms_reference(&t));
        assert!(c.conforms_unordered(&t));
    }

    #[test]
    fn exponential_determinization_falls_back_to_nfa_simulation() {
        // (a|b)* a (a|b)^18 determinizes to ~2^19 states from a ~80-state
        // NFA: the output cap must trip and conformance must stay fast and
        // correct on the simulation path.
        let n = 18usize;
        let mut model = String::from("(a|b)* a");
        for _ in 0..n {
            model.push_str(" (a|b)");
        }
        let dtd = Dtd::builder("r").rule("r", &model).build().unwrap();
        let c = dtd.compiled();
        let r = c.sym(&"r".into()).unwrap();
        assert!(matches!(c.rules[r.index()].ordered, OrderedCheck::NfaSim));
        // 'a' followed by n trailing symbols: accepted; n-1 trailing: not.
        let mut good = crate::tree::XmlTree::new("r");
        good.add_child(good.root(), "a");
        for i in 0..n {
            good.add_child(good.root(), if i % 2 == 0 { "b" } else { "a" });
        }
        assert!(c.conforms(&good));
        assert!(dtd.conforms_reference(&good));
        let mut bad = crate::tree::XmlTree::new("r");
        for _ in 0..n {
            bad.add_child(bad.root(), "b");
        }
        assert!(!c.conforms(&bad));
        assert!(!dtd.conforms_reference(&bad));
    }

    #[test]
    fn intern_tree_maps_known_and_unknown_labels() {
        let d = source_dtd();
        let mut t = crate::tree::XmlTree::new("db");
        let b = t.add_child(t.root(), "book");
        let x = t.add_child(b, "mystery");
        let syms = d.compiled().intern_tree(&t);
        assert!(syms[t.root().index()].is_some());
        assert!(syms[b.index()].is_some());
        assert!(syms[x.index()].is_none());
    }
}
