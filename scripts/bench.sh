#!/usr/bin/env bash
# Run the criterion benchmark suite and snapshot the results to
# BENCH_<date>.json (one JSON object per line, shim format: id, median_ns,
# mean_ns, min_ns, max_ns, samples).
#
# Usage:
#   scripts/bench.sh                # all benches -> BENCH_$(date +%F).json
#   scripts/bench.sh baseline      # -> BENCH_baseline.json
#   BENCHES="consistency_nested canonical_solution" scripts/bench.sh
#   XDX_WIRE_CODEC=text scripts/bench.sh   # E14: serve only the text codec
#
# The `serving` bench (E14) emits its served rows once per wire codec
# (`…/text` and `…/binary`); set XDX_WIRE_CODEC=text|binary to restrict it.
set -euo pipefail
cd "$(dirname "$0")/.."

tag="${1:-$(date +%F)}"
out="BENCH_${tag}.json"
: > "$out"

benches="${BENCHES:-consistency_nested consistency_general canonical_solution \
certain_answers_tractable certain_answers_hardness dtd_trim parikh_membership \
sibling_ordering univocality batch_engine satisfiability pattern_eval chase \
serving codec store registry obs}"

for bench in $benches; do
    echo "== $bench =="
    XDX_BENCH_JSON="$PWD/$out" cargo bench -q --offline -p xdx-bench --bench "$bench"
done

echo "wrote $out ($(wc -l < "$out") entries)"
