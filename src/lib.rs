//! # xml-data-exchange
//!
//! Facade crate for the XML data exchange library, a from-scratch
//! reproduction of Marcelo Arenas and Leonid Libkin, *"XML Data Exchange:
//! Consistency and Query Answering"* (PODS 2005; expanded version in JACM
//! 55(2), 2008).
//!
//! The implementation is split into seven crates, re-exported here:
//!
//! * [`relang`] — regular-expression algebra over element types: parsing,
//!   NFAs/DFAs, Parikh images and permutation languages `π(r)`
//!   (Proposition 5.3, Lemma 5.4), repairs `rep(w, r)` and univocality
//!   (Definition 6.9);
//! * [`xmltree`] — XML documents as labelled unranked trees with constants
//!   and nulls, and DTDs with ordered/unordered conformance, consistency
//!   trimming (Lemma 2.2) and the nested-relational class;
//! * [`patterns`] — tree-pattern formulae and conjunctive tree queries
//!   (CTQ, CTQ//, unions), evaluation and tree homomorphisms;
//! * [`automata`] — unranked tree automata and the pattern/DTD
//!   satisfiability engine behind the consistency results (Theorem 4.1);
//! * [`core`] — data exchange settings, consistency checking, the canonical
//!   solution chase, certain answers, the dichotomy classification
//!   (Theorem 6.2) and executable hardness gadgets;
//! * [`store`] — the resident document store behind the server's stored-doc
//!   ops: checksummed binary snapshots, a write-ahead log of node-local
//!   edits with prefix-consistent crash recovery, `O(dirty)` incremental
//!   re-validation and version-tagged answer caching;
//! * [`server`] — the async serving front-end: a hand-rolled epoll event
//!   loop and a length-prefixed wire protocol exposing consistency checks,
//!   canonical solutions and certain answers over TCP and Unix sockets,
//!   dispatching micro-batches to a worker pool over one compiled setting
//!   (see `crates/server/PROTOCOL.md` and `examples/serve.rs`).
//!
//! ## Quickstart
//!
//! The running example of the paper (Figures 1 and 2): restructure a
//! bibliography of books with authors into writers with works, then answer a
//! query over the target schema with certain-answer semantics.
//!
//! ```
//! use xml_data_exchange::core::setting::{books_to_writers_setting, figure_1_source_tree};
//! use xml_data_exchange::core::certain_answers;
//! use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
//!
//! let setting = books_to_writers_setting();
//! let source = figure_1_source_tree();
//!
//! // "Who is the writer of the work named Computational Complexity?"
//! let query = UnionQuery::single(
//!     ConjunctiveTreeQuery::new(
//!         ["w"],
//!         vec![parse_pattern(
//!             "writer(@name=$w)[work(@title=\"Computational Complexity\")]",
//!         )
//!         .unwrap()],
//!     )
//!     .unwrap(),
//! );
//! let answers = certain_answers(&setting, &source, &query).unwrap();
//! assert!(answers.tuples.contains(&vec!["Papadimitriou".to_string()]));
//!
//! // "What are the works written in 1994?" cannot be answered with certainty.
//! let uncertain = UnionQuery::single(
//!     ConjunctiveTreeQuery::new(
//!         ["t"],
//!         vec![parse_pattern("work(@title=$t, @year=\"1994\")").unwrap()],
//!     )
//!     .unwrap(),
//! );
//! assert!(certain_answers(&setting, &source, &uncertain).unwrap().tuples.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xdx_automata as automata;
pub use xdx_core as core;
pub use xdx_obs as obs;
pub use xdx_patterns as patterns;
pub use xdx_relang as relang;
pub use xdx_server as server;
pub use xdx_store as store;
pub use xdx_xmltree as xmltree;

pub use xdx_core::{
    canonical_solution, certain_answers, certain_answers_boolean, check_consistency,
    classify_setting, impose_sibling_order, is_solution, BatchEngine, CompiledSetting,
    DataExchangeSetting, Std,
};
pub use xdx_patterns::{ConjunctiveTreeQuery, TreePattern, UnionQuery};
pub use xdx_xmltree::{Dtd, TreeBuilder, XmlTree};
