//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the pieces the property tests need: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `name in strategy` argument
//! binding, [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], integer
//! range and tuple strategies, and [`collection::vec`].
//!
//! Unlike the real proptest there is no shrinking: a failing case panics with
//! the sampled inputs so it can be reproduced by hand. Sampling is
//! deterministic per test (the seed is derived from the test's name), so CI
//! failures are reproducible.

#![forbid(unsafe_code)]

/// Deterministic SplitMix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from a test name (FNV-1a), for per-test determinism.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How a property-test case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Strategy: a recipe for generating values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                ((self.start as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                ((start as u128) + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut TestRng) -> bool {
        *self
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of values from an element strategy, with a
    /// length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — shim for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1);
            let len = self.size.start + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// Require `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The `PROPTEST_CASES` environment override, if set and parseable
        /// (the real proptest honours the same variable). Deep-sweep CI jobs
        /// use it to scale every property without touching the tests.
        pub fn env_cases() -> Option<u32> {
            std::env::var("PROPTEST_CASES").ok()?.parse().ok()
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: Config::env_cases().unwrap_or(64),
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::TestCaseError;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert inside a property body; fails the case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` block: an optional config header followed by test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut successes: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while successes < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts, {} successes)",
                        stringify!($name), attempts, successes
                    );
                }
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                let outcome = (|| -> Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => successes += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed: {}\ninputs: {}",
                            stringify!($name),
                            msg,
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ")
                        );
                    }
                }
            }
        }
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn range_strategy_in_bounds(x in 3usize..17) {
            prop_assert!((3..17).contains(&x));
        }

        /// Tuples and vec strategies compose.
        #[test]
        fn composed_strategies(values in collection::vec((0usize..3, 0u32..5), 0..12)) {
            prop_assert!(values.len() < 12);
            for (a, b) in &values {
                prop_assert!(*a < 3);
                prop_assert!(*b < 5, "b was {}", b);
            }
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(false);
            }
        }
        always_fails();
    }
}
