//! Offline shim for the subset of the `criterion` benchmarking API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides a
//! small, honest wall-clock harness with criterion-compatible names:
//! [`Criterion`], benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, [`BenchmarkId`], `b.iter(...)`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a warm-up phase, each *sample* runs the closure
//! enough times to cover `measurement_time / sample_size` and records the mean
//! nanoseconds per iteration; the reported statistics are computed over the
//! samples (median, mean, min, max). Results are printed to stdout, and when
//! the environment variable `XDX_BENCH_JSON` names a file, one JSON line per
//! benchmark is appended to it — `scripts/bench.sh` uses this to snapshot the
//! suite into `BENCH_<date>.json`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export name-compatible with `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Mean ns/iter of each sample, filled by [`Bencher::iter`].
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also used to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }
}

/// Summary statistics of one benchmark run.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median ns/iter over samples.
    pub median_ns: f64,
    /// Mean ns/iter over samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples.
    pub samples: usize,
}

fn report(est: &Estimate) {
    println!(
        "bench {:<60} median {:>14} mean {:>14}  (min {}, max {}, {} samples)",
        est.id,
        format_ns(est.median_ns),
        format_ns(est.mean_ns),
        format_ns(est.min_ns),
        format_ns(est.max_ns),
        est.samples
    );
    if let Ok(path) = std::env::var("XDX_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
                est.id.replace('"', "'"),
                est.median_ns,
                est.mean_ns,
                est.min_ns,
                est.max_ns,
                est.samples
            );
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
                let _ = writeln!(f, "{line}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        self.finish_one(&id, b);
        self
    }

    /// Run one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let id = BenchmarkId { id: id.to_string() };
        self.finish_one(&id, b);
        self
    }

    fn finish_one(&mut self, id: &BenchmarkId, b: Bencher) {
        let mut samples = b.samples_ns;
        if samples.is_empty() {
            samples.push(0.0);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let mid = samples.len() / 2;
        let median = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) / 2.0
        } else {
            samples[mid]
        };
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        report(&Estimate {
            id: format!("{}/{}", self.name, id),
            median_ns: median,
            mean_ns: mean,
            min_ns: samples[0],
            max_ns: *samples.last().expect("non-empty"),
            samples: samples.len(),
        });
    }

    /// Mark the group complete (criterion-API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            _criterion: self,
        }
    }
}

/// Define a benchmark group function set (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` plus filter args; the shim runs
            // everything unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_self_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
