//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a tiny deterministic PRNG with `rand`-compatible names: [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator
//! is SplitMix64 — statistically fine for test-input and workload generation,
//! not a substitute for the real crate's cryptographic or distribution
//! machinery. Seeded runs are reproducible, which is all the benchmark
//! generators and property tests need.

#![forbid(unsafe_code)]

/// Types that can produce pseudo-random values.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (half-open).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < 2^-64 * span: irrelevant for workload
                // generation over small spans.
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Pseudo-random number generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (shim for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
